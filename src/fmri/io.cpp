#include "fmri/io.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/error.hpp"

namespace fcma::fmri {

namespace {

constexpr char kMagic[4] = {'F', 'C', 'M', 'B'};
constexpr char kMaskMagic[4] = {'F', 'C', 'M', 'M'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File open_file(const std::string& path, const char* mode) {
  File f(std::fopen(path.c_str(), mode));
  FCMA_CHECK(f != nullptr, "cannot open " + path);
  return f;
}

void write_exact(std::FILE* f, const void* p, std::size_t bytes,
                 const std::string& path) {
  FCMA_CHECK(std::fwrite(p, 1, bytes, f) == bytes, "short write to " + path);
}

void read_exact(std::FILE* f, void* p, std::size_t bytes,
                const std::string& path) {
  FCMA_CHECK(std::fread(p, 1, bytes, f) == bytes, "short read from " + path);
}

}  // namespace

void save_activity(const std::string& path, const linalg::Matrix& data) {
  File f = open_file(path, "wb");
  write_exact(f.get(), kMagic, sizeof(kMagic), path);
  const std::uint32_t version = kVersion;
  const auto rows = static_cast<std::uint64_t>(data.rows());
  const auto cols = static_cast<std::uint64_t>(data.cols());
  write_exact(f.get(), &version, sizeof(version), path);
  write_exact(f.get(), &rows, sizeof(rows), path);
  write_exact(f.get(), &cols, sizeof(cols), path);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    write_exact(f.get(), data.row(i), data.cols() * sizeof(float), path);
  }
}

linalg::Matrix load_activity(const std::string& path) {
  File f = open_file(path, "rb");
  char magic[4];
  read_exact(f.get(), magic, sizeof(magic), path);
  FCMA_CHECK(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
             path + " is not an FCMB file");
  std::uint32_t version = 0;
  read_exact(f.get(), &version, sizeof(version), path);
  FCMA_CHECK(version == kVersion, "unsupported FCMB version in " + path);
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  read_exact(f.get(), &rows, sizeof(rows), path);
  read_exact(f.get(), &cols, sizeof(cols), path);
  FCMA_CHECK(rows > 0 && cols > 0 && rows < (1ull << 32) &&
                 cols < (1ull << 32),
             "implausible FCMB dimensions in " + path);
  linalg::Matrix m(static_cast<std::size_t>(rows),
                   static_cast<std::size_t>(cols));
  for (std::size_t i = 0; i < m.rows(); ++i) {
    read_exact(f.get(), m.row(i), m.cols() * sizeof(float), path);
  }
  return m;
}

void save_epochs(const std::string& path, const std::vector<Epoch>& epochs) {
  std::ofstream out(path);
  FCMA_CHECK(out.good(), "cannot open " + path);
  out << "# subject label start length\n";
  for (const Epoch& e : epochs) {
    out << e.subject << ' ' << e.label << ' ' << e.start << ' ' << e.length
        << '\n';
  }
  FCMA_CHECK(out.good(), "write failed for " + path);
}

std::vector<Epoch> load_epochs(const std::string& path) {
  std::ifstream in(path);
  FCMA_CHECK(in.good(), "cannot open " + path);
  std::vector<Epoch> epochs;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    Epoch e;
    if (ls >> e.subject >> e.label >> e.start >> e.length) {
      epochs.push_back(e);
    } else {
      // Allow blank/comment-only lines; anything else is malformed.
      std::string leftover;
      std::istringstream check(line);
      FCMA_CHECK(!(check >> leftover), "malformed epoch line in " + path +
                                           ": '" + line + "'");
    }
  }
  FCMA_CHECK(!epochs.empty(), "no epochs found in " + path);
  return epochs;
}

void save_mask(const std::string& path, const BrainMask& mask) {
  File f = open_file(path, "wb");
  write_exact(f.get(), kMaskMagic, sizeof(kMaskMagic), path);
  const std::uint32_t version = kVersion;
  write_exact(f.get(), &version, sizeof(version), path);
  const VolumeGeometry& g = mask.geometry();
  const std::int32_t dims[3] = {g.nx, g.ny, g.nz};
  write_exact(f.get(), dims, sizeof(dims), path);
  std::vector<std::uint8_t> grid(g.size(), 0);
  for (std::uint32_t m = 0; m < mask.voxels(); ++m) {
    grid[mask.grid_index(m)] = 1;
  }
  write_exact(f.get(), grid.data(), grid.size(), path);
}

BrainMask load_mask(const std::string& path) {
  File f = open_file(path, "rb");
  char magic[4];
  read_exact(f.get(), magic, sizeof(magic), path);
  FCMA_CHECK(std::memcmp(magic, kMaskMagic, sizeof(kMaskMagic)) == 0,
             path + " is not an FCMM file");
  std::uint32_t version = 0;
  read_exact(f.get(), &version, sizeof(version), path);
  FCMA_CHECK(version == kVersion, "unsupported FCMM version in " + path);
  std::int32_t dims[3];
  read_exact(f.get(), dims, sizeof(dims), path);
  const VolumeGeometry g{dims[0], dims[1], dims[2]};
  FCMA_CHECK(dims[0] > 0 && dims[1] > 0 && dims[2] > 0 &&
                 g.size() < (1ull << 32),
             "implausible FCMM geometry in " + path);
  std::vector<std::uint8_t> grid(g.size());
  read_exact(f.get(), grid.data(), grid.size(), path);
  std::vector<bool> in_brain(g.size());
  for (std::size_t i = 0; i < grid.size(); ++i) in_brain[i] = grid[i] != 0;
  return BrainMask(g, in_brain);
}

void save_dataset(const std::string& stem, const Dataset& dataset) {
  save_activity(stem + ".fcmb", dataset.data());
  save_epochs(stem + ".epochs", dataset.epochs());
}

Dataset load_dataset(const std::string& stem, const std::string& name) {
  linalg::Matrix data = load_activity(stem + ".fcmb");
  std::vector<Epoch> epochs = load_epochs(stem + ".epochs");
  std::int32_t subjects = 0;
  for (const Epoch& e : epochs) subjects = std::max(subjects, e.subject + 1);
  return Dataset(name, std::move(data), std::move(epochs), subjects);
}

}  // namespace fcma::fmri
