// Synthetic fMRI generator with planted, condition-dependent connectivity.
//
// Replaces the paper's private human datasets (see DESIGN.md §1).  The
// generator plants the exact effect FCMA is designed to detect: a set of
// "informative" voxels whose *pairwise temporal correlations* — not their
// mean activity — differ between the two task conditions.
//
// Construction: informative voxels are split into groups A and B.
//   label 0 epochs: A and B all load one shared latent signal   -> A-B pairs
//                   strongly correlated.
//   label 1 epochs: A loads latent La, B loads latent Lb        -> A-B pairs
//                   uncorrelated; within-group correlation unchanged.
// Every voxel additionally carries a weak global latent (scanner-wide
// background correlation) and AR(1) Gaussian noise; informative loadings get
// mild per-subject jitter.  Mean activity is condition-independent by
// design, so univariate analyses see nothing — only correlation-based
// methods like FCMA can separate the conditions.
//
// Two entry points: generate_synthetic scatters the informative voxels
// randomly through a flat voxel list; generate_synthetic_volumetric plants
// them as contiguous spatial blobs inside a 3D brain mask, so that ROI
// cluster analysis (volume.hpp) has ground truth to recover.
#pragma once

#include "fmri/dataset.hpp"
#include "fmri/presets.hpp"
#include "fmri/volume.hpp"

namespace fcma::fmri {

/// Generates a dataset from `spec`; deterministic in spec.seed.
[[nodiscard]] Dataset generate_synthetic(const DatasetSpec& spec);

/// A volumetric synthetic dataset: activity + brain mask + the planted
/// ROI blobs (ground truth for cluster recovery).
struct VolumetricDataset {
  Dataset dataset;
  BrainMask mask;
  /// The planted blobs as clusters of mask-voxel indices, largest first.
  std::vector<RoiCluster> planted_rois;
};

/// Generates a dataset whose voxel list is the ellipsoid brain mask of
/// `geometry` (spec.voxels is ignored; the mask defines the count) and
/// whose informative voxels form `blobs` compact spherical clusters,
/// alternating between connectivity groups A and B.
[[nodiscard]] VolumetricDataset generate_synthetic_volumetric(
    const DatasetSpec& spec, const VolumeGeometry& geometry,
    std::size_t blobs = 4);

}  // namespace fcma::fmri
