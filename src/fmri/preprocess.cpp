#include "fmri/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/aligned.hpp"

namespace fcma::fmri {

namespace {

/// Discrete orthogonal polynomial basis over t = 0..n-1 (Gram-Schmidt on
/// the monomials), each column unit-norm.  Cached per (n, order) call site
/// would be overkill: detrend_dataset builds it once and reuses it.
std::vector<std::vector<double>> legendre_basis(std::size_t n, int order) {
  FCMA_CHECK(order >= 0, "polynomial order must be non-negative");
  FCMA_CHECK(static_cast<std::size_t>(order) < n,
             "polynomial order must be below the series length");
  std::vector<std::vector<double>> basis;
  for (int p = 0; p <= order; ++p) {
    std::vector<double> col(n);
    for (std::size_t t = 0; t < n; ++t) {
      col[t] = std::pow(static_cast<double>(t), p);
    }
    // Orthogonalize against previous columns.
    for (const auto& prev : basis) {
      double dot = 0.0;
      for (std::size_t t = 0; t < n; ++t) dot += col[t] * prev[t];
      for (std::size_t t = 0; t < n; ++t) col[t] -= dot * prev[t];
    }
    double norm = 0.0;
    for (const double v : col) norm += v * v;
    norm = std::sqrt(norm);
    FCMA_CHECK(norm > 1e-12, "degenerate polynomial basis");
    for (double& v : col) v /= norm;
    basis.push_back(std::move(col));
  }
  return basis;
}

void detrend_with_basis(std::span<float> series,
                        const std::vector<std::vector<double>>& basis) {
  for (const auto& col : basis) {
    double coeff = 0.0;
    for (std::size_t t = 0; t < series.size(); ++t) {
      coeff += col[t] * series[t];
    }
    for (std::size_t t = 0; t < series.size(); ++t) {
      series[t] = static_cast<float>(series[t] - coeff * col[t]);
    }
  }
}

}  // namespace

void detrend(std::span<float> series, int order) {
  detrend_with_basis(series, legendre_basis(series.size(), order));
}

void detrend_dataset(Dataset& dataset, int order) {
  const auto basis = legendre_basis(dataset.timepoints(), order);
  for (std::size_t v = 0; v < dataset.voxels(); ++v) {
    detrend_with_basis({dataset.data().row(v), dataset.timepoints()}, basis);
  }
}

void spatial_smooth(Dataset& dataset, const BrainMask& mask,
                    double fwhm_voxels) {
  FCMA_CHECK(mask.voxels() == dataset.voxels(),
             "mask voxel count must match the dataset");
  FCMA_CHECK(fwhm_voxels > 0.0, "FWHM must be positive");
  const double sigma = fwhm_voxels / 2.354820045;  // FWHM -> sigma
  const int radius = std::max(1, static_cast<int>(std::ceil(2.5 * sigma)));

  // Precompute, for every mask voxel, its in-mask neighborhood and weights.
  struct Neighbor {
    std::uint32_t voxel;
    float weight;
  };
  std::vector<std::vector<Neighbor>> stencil(mask.voxels());
  for (std::uint32_t m = 0; m < mask.voxels(); ++m) {
    const Coord c = mask.coord(m);
    double total = 0.0;
    std::vector<Neighbor> neigh;
    for (int dz = -radius; dz <= radius; ++dz) {
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          const std::int64_t nm =
              mask.mask_index(Coord{c.x + dx, c.y + dy, c.z + dz});
          if (nm < 0) continue;
          const double r2 = double(dx) * dx + double(dy) * dy +
                            double(dz) * dz;
          const double w = std::exp(-r2 / (2.0 * sigma * sigma));
          neigh.push_back(
              {static_cast<std::uint32_t>(nm), static_cast<float>(w)});
          total += w;
        }
      }
    }
    const auto inv = static_cast<float>(1.0 / total);
    for (auto& nb : neigh) nb.weight *= inv;
    stencil[m] = std::move(neigh);
  }

  // Apply per time point (column).  Work column-by-column with a scratch
  // vector so the convolution reads unsmoothed values.
  std::vector<float> column(mask.voxels());
  for (std::size_t t = 0; t < dataset.timepoints(); ++t) {
    for (std::uint32_t m = 0; m < mask.voxels(); ++m) {
      column[m] = dataset.data()(m, t);
    }
    for (std::uint32_t m = 0; m < mask.voxels(); ++m) {
      float acc = 0.0f;
      for (const auto& nb : stencil[m]) acc += nb.weight * column[nb.voxel];
      dataset.data()(m, t) = acc;
    }
  }
}

std::vector<float> framewise_displacement(const Dataset& dataset) {
  std::vector<float> fd(dataset.timepoints(), 0.0f);
  for (std::size_t t = 1; t < dataset.timepoints(); ++t) {
    double sum = 0.0;
    for (std::size_t v = 0; v < dataset.voxels(); ++v) {
      const double d = static_cast<double>(dataset.data()(v, t)) -
                       dataset.data()(v, t - 1);
      sum += d * d;
    }
    fd[t] = static_cast<float>(
        std::sqrt(sum / static_cast<double>(dataset.voxels())));
  }
  return fd;
}

std::vector<std::size_t> detect_motion_spikes(const Dataset& dataset,
                                              double threshold_sd) {
  const std::vector<float> fd = framewise_displacement(dataset);
  // Robust center/scale: median and median absolute deviation.
  std::vector<float> sorted(fd.begin() + 1, fd.end());  // skip the zero
  if (sorted.empty()) return {};
  std::sort(sorted.begin(), sorted.end());
  const float median = sorted[sorted.size() / 2];
  std::vector<float> dev(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    dev[i] = std::abs(sorted[i] - median);
  }
  std::sort(dev.begin(), dev.end());
  const double mad = dev[dev.size() / 2];
  const double scale = std::max(1e-9, 1.4826 * mad);  // MAD -> sigma
  std::vector<std::size_t> spikes;
  for (std::size_t t = 1; t < fd.size(); ++t) {
    if ((fd[t] - median) / scale > threshold_sd) spikes.push_back(t);
  }
  return spikes;
}

std::vector<std::size_t> censored_epochs(
    const Dataset& dataset, std::span<const std::size_t> spike_timepoints) {
  const std::set<std::size_t> spikes(spike_timepoints.begin(),
                                     spike_timepoints.end());
  std::vector<std::size_t> censored;
  for (std::size_t e = 0; e < dataset.epochs().size(); ++e) {
    const Epoch& ep = dataset.epochs()[e];
    for (std::uint32_t t = 0; t < ep.length; ++t) {
      if (spikes.count(ep.start + t)) {
        censored.push_back(e);
        break;
      }
    }
  }
  return censored;
}

std::vector<std::size_t> usable_epochs(
    const Dataset& dataset, std::span<const std::size_t> spike_timepoints) {
  const auto censored = censored_epochs(dataset, spike_timepoints);
  const std::set<std::size_t> bad(censored.begin(), censored.end());
  std::vector<std::size_t> usable;
  for (std::size_t e = 0; e < dataset.epochs().size(); ++e) {
    if (!bad.count(e)) usable.push_back(e);
  }
  return usable;
}

}  // namespace fcma::fmri
