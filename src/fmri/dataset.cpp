#include "fmri/dataset.hpp"

#include <map>

#include "fmri/dataset_view.hpp"
#include "stats/stats.hpp"

namespace fcma::fmri {

Dataset::Dataset(std::string name, linalg::Matrix data,
                 std::vector<Epoch> epochs, std::int32_t subjects)
    : name_(std::move(name)),
      data_(std::move(data)),
      epochs_(std::move(epochs)),
      subjects_(subjects) {
  validate();
}

std::vector<std::size_t> Dataset::epochs_of_subject(
    std::int32_t subject) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    if (epochs_[i].subject == subject) out.push_back(i);
  }
  return out;
}

void Dataset::validate() const {
  FCMA_CHECK(subjects_ > 0, "dataset must have at least one subject");
  FCMA_CHECK(!epochs_.empty(), "dataset must have epochs");
  std::map<std::int32_t, std::size_t> per_subject;
  for (const Epoch& e : epochs_) {
    FCMA_CHECK(e.subject >= 0 && e.subject < subjects_,
               "epoch subject out of range");
    FCMA_CHECK(e.label == 0 || e.label == 1, "epoch label must be 0 or 1");
    FCMA_CHECK(e.length > 0, "epoch must span time points");
    FCMA_CHECK(static_cast<std::size_t>(e.start) + e.length <= timepoints(),
               "epoch window exceeds the scan");
    ++per_subject[e.subject];
  }
  FCMA_CHECK(per_subject.size() == static_cast<std::size_t>(subjects_),
             "every subject needs epochs");
  const std::size_t first = per_subject.begin()->second;
  for (const auto& [subject, count] : per_subject) {
    (void)subject;
    FCMA_CHECK(count == first, "epochs per subject must be uniform");
  }
}

NormalizedEpochs normalize_epochs(const Dataset& dataset) {
  std::vector<std::size_t> all(dataset.epochs().size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return normalize_epochs(dataset, all);
}

NormalizedEpochs normalize_epochs(
    const Dataset& dataset, const std::vector<std::size_t>& epoch_indices) {
  // One copy-then-normalize loop serves every backend: route the in-memory
  // case through the view so it cannot drift from the streamed loaders.
  return normalize_epochs(InMemoryView(dataset), epoch_indices);
}

}  // namespace fcma::fmri
