// Volumetric brain geometry and ROI cluster analysis.
//
// FCMA's math sees a flat voxel list, but its input is a 3D scan and its
// *output* — "the brain regions constituted by top voxels are identified as
// ROIs" (paper §3.1.2) — is spatial.  This module carries the 3D structure:
// a voxel grid, a brain mask mapping mask-voxel indices (what the pipeline
// uses) to grid coordinates, and connected-component clustering that turns
// a selected voxel set into ROIs with centroids and extents.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace fcma::fmri {

/// Integer voxel coordinate within the scan grid.
struct Coord {
  int x = 0;
  int y = 0;
  int z = 0;

  friend bool operator==(const Coord& a, const Coord& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
};

/// Dense 3D voxel grid geometry.
struct VolumeGeometry {
  int nx = 0;
  int ny = 0;
  int nz = 0;

  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(nx) * ny * nz;
  }

  [[nodiscard]] bool contains(const Coord& c) const {
    return c.x >= 0 && c.x < nx && c.y >= 0 && c.y < ny && c.z >= 0 &&
           c.z < nz;
  }

  /// Linear index of a coordinate (x fastest).
  [[nodiscard]] std::uint32_t index_of(const Coord& c) const {
    FCMA_CHECK(contains(c), "coordinate outside the volume");
    return static_cast<std::uint32_t>((c.z * ny + c.y) * nx + c.x);
  }

  /// Coordinate of a linear index.
  [[nodiscard]] Coord coord_of(std::uint32_t index) const {
    FCMA_CHECK(index < size(), "index outside the volume");
    const int x = static_cast<int>(index) % nx;
    const int y = (static_cast<int>(index) / nx) % ny;
    const int z = static_cast<int>(index) / (nx * ny);
    return Coord{x, y, z};
  }
};

/// Subset of grid voxels that are inside the brain.  The analysis pipeline
/// works in "mask space" (dense indices 0..voxels-1); this class maps both
/// ways.
class BrainMask {
 public:
  BrainMask() = default;

  /// Builds a mask from a boolean grid (true = brain voxel).
  BrainMask(VolumeGeometry geometry, const std::vector<bool>& in_brain);

  /// Synthetic axis-aligned ellipsoid "brain" filling the grid.
  [[nodiscard]] static BrainMask ellipsoid(VolumeGeometry geometry,
                                           double fill = 0.9);

  [[nodiscard]] const VolumeGeometry& geometry() const { return geometry_; }

  /// Number of voxels inside the mask (= the analysis voxel count).
  [[nodiscard]] std::size_t voxels() const { return mask_to_grid_.size(); }

  /// Grid index of mask voxel `m`.
  [[nodiscard]] std::uint32_t grid_index(std::uint32_t m) const {
    FCMA_CHECK(m < voxels(), "mask index out of range");
    return mask_to_grid_[m];
  }

  /// Coordinate of mask voxel `m`.
  [[nodiscard]] Coord coord(std::uint32_t m) const {
    return geometry_.coord_of(grid_index(m));
  }

  /// Mask index of a coordinate, or -1 if outside the brain.
  [[nodiscard]] std::int64_t mask_index(const Coord& c) const;

  /// True if the coordinate is a brain voxel.
  [[nodiscard]] bool in_brain(const Coord& c) const {
    return geometry_.contains(c) && mask_index(c) >= 0;
  }

 private:
  VolumeGeometry geometry_;
  std::vector<std::uint32_t> mask_to_grid_;
  std::vector<std::int64_t> grid_to_mask_;  // -1 outside
};

/// One spatial cluster of selected voxels (an ROI).
struct RoiCluster {
  std::vector<std::uint32_t> voxels;  ///< mask indices, ascending
  Coord peak{};                       ///< voxel closest to the centroid
  double centroid_x = 0.0;
  double centroid_y = 0.0;
  double centroid_z = 0.0;

  [[nodiscard]] std::size_t size() const { return voxels.size(); }
};

/// Groups `selected` mask voxels into 6-connected spatial clusters, largest
/// first; clusters smaller than `min_size` are dropped (standard cluster
/// thresholding).
[[nodiscard]] std::vector<RoiCluster> find_clusters(
    const BrainMask& mask, std::span<const std::uint32_t> selected,
    std::size_t min_size = 1);

}  // namespace fcma::fmri
