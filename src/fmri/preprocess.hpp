// fMRI preprocessing.
//
// The paper's pipeline "reads in the preprocessed fMRI data (e.g.,
// corrected for head motion and other noise sources)" (§3.1) — the
// preprocessing itself happens upstream.  A self-contained release needs
// that upstream: this module provides the standard time-series cleanups a
// raw scan requires before FCMA —
//
//   * polynomial detrending (scanner drift removal),
//   * within-mask spatial Gaussian smoothing,
//   * motion-spike detection via frame-to-frame global displacement and
//     censoring (epoch exclusion).
//
// All operations are deterministic and work in place on the Dataset's
// [voxels x time] matrix.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fmri/dataset.hpp"
#include "fmri/volume.hpp"

namespace fcma::fmri {

/// Removes a least-squares polynomial of `order` (0 = mean, 1 = linear
/// trend, ...) from one time series, in place.  Uses an orthogonal
/// (discrete Legendre) basis so coefficients are solved independently.
void detrend(std::span<float> series, int order);

/// Detrends every voxel of the dataset, independently per epoch-free run
/// (the whole scan is treated as one run).
void detrend_dataset(Dataset& dataset, int order);

/// Gaussian spatial smoothing within the brain mask: each time point's
/// volume is convolved with an isotropic Gaussian of `fwhm_voxels`
/// full-width-half-max, renormalized over in-mask neighbors so the brain
/// boundary does not darken.
void spatial_smooth(Dataset& dataset, const BrainMask& mask,
                    double fwhm_voxels);

/// Frame-to-frame displacement proxy: root-mean-square difference of
/// consecutive volumes, one value per time point (first = 0).
[[nodiscard]] std::vector<float> framewise_displacement(
    const Dataset& dataset);

/// Indices of time points whose framewise displacement exceeds
/// `threshold_sd` standard deviations above the median — candidate motion
/// spikes.
[[nodiscard]] std::vector<std::size_t> detect_motion_spikes(
    const Dataset& dataset, double threshold_sd = 4.0);

/// Epoch indices that contain at least one spiked time point; the analysis
/// protocols drop these ("censoring").
[[nodiscard]] std::vector<std::size_t> censored_epochs(
    const Dataset& dataset, std::span<const std::size_t> spike_timepoints);

/// Complement of censored_epochs: the epochs safe to analyze.
[[nodiscard]] std::vector<std::size_t> usable_epochs(
    const Dataset& dataset, std::span<const std::size_t> spike_timepoints);

}  // namespace fcma::fmri
