#include "fmri/dataset_view.hpp"

#include "common/error.hpp"
#include "stats/stats.hpp"

namespace fcma::fmri {

std::vector<std::size_t> DatasetView::epochs_of_subject(
    std::int32_t subject) const {
  std::vector<std::size_t> out;
  const std::vector<Epoch>& all = epochs();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].subject == subject) out.push_back(i);
  }
  return out;
}

DatasetView::Panel InMemoryView::epoch_panel(std::size_t idx) const {
  FCMA_CHECK(idx < dataset_->epochs().size(), "epoch index out of range");
  const Epoch& e = dataset_->epochs()[idx];
  const linalg::Matrix& data = dataset_->data();
  Panel p;
  p.view = linalg::ConstMatrixView{data.row(0) + e.start, data.rows(),
                                   e.length, data.ld()};
  // The Dataset outlives the view by contract; nothing to pin.
  return p;
}

void normalize_epoch_panel(const DatasetView::Panel& panel,
                           linalg::MatrixView out) {
  FCMA_CHECK(out.rows == panel.view.rows && out.cols == panel.view.cols,
             "panel/output shape mismatch");
  for (std::size_t row = 0; row < out.rows; ++row) {
    const float* src = panel.view.row(row);
    float* dst = out.row(row);
    for (std::size_t t = 0; t < out.cols; ++t) dst[t] = src[t];
    stats::normalize_epoch({dst, out.cols});
  }
}

NormalizedEpochs normalize_epochs(const DatasetView& view) {
  std::vector<std::size_t> all(view.epochs().size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return normalize_epochs(view, all);
}

NormalizedEpochs normalize_epochs(
    const DatasetView& view, const std::vector<std::size_t>& epoch_indices) {
  NormalizedEpochs out;
  out.per_epoch.reserve(epoch_indices.size());
  out.meta.reserve(epoch_indices.size());
  const std::size_t v = view.voxels();
  for (const std::size_t idx : epoch_indices) {
    FCMA_CHECK(idx < view.epochs().size(), "epoch index out of range");
    const Epoch& e = view.epochs()[idx];
    linalg::Matrix m(v, e.length);
    normalize_epoch_panel(view.epoch_panel(idx), m.view());
    out.per_epoch.push_back(std::move(m));
    out.meta.push_back(e);
  }
  return out;
}

}  // namespace fcma::fmri
