// Out-of-core access abstraction over a labeled fMRI dataset.
//
// A DatasetView exposes the epoch metadata (always resident — it is tiny)
// plus on-demand access to the raw [voxels x epoch_length] activity window
// of any single epoch.  Nothing above the fmri layer may assume the full
// [voxels x time] matrix is in memory: consumers ask for one epoch panel at
// a time and drop it when done.  Two backends exist: InMemoryView wraps an
// in-memory Dataset zero-copy (the bit-identical fast path), and
// ShardStoreView (shard_store.hpp) maps subject-sharded on-disk panels.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fmri/dataset.hpp"
#include "linalg/matrix.hpp"

namespace fcma::fmri {

/// Read-only view of a dataset at subject/epoch-panel granularity.
class DatasetView {
 public:
  virtual ~DatasetView() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual std::size_t voxels() const = 0;
  [[nodiscard]] virtual std::size_t timepoints() const = 0;
  [[nodiscard]] virtual std::int32_t subjects() const = 0;
  /// Epoch metadata, subject-major and time-ordered (always resident).
  [[nodiscard]] virtual const std::vector<Epoch>& epochs() const = 0;

  [[nodiscard]] std::size_t epochs_per_subject() const {
    if (subjects() <= 0) return 0;
    return epochs().size() / static_cast<std::size_t>(subjects());
  }

  /// Indices (into epochs()) owned by `subject`, in time order.  A subject
  /// id with no epochs yields an empty vector, never an error.
  [[nodiscard]] std::vector<std::size_t> epochs_of_subject(
      std::int32_t subject) const;

  /// One epoch's raw activity window.  `view` is [voxels x epoch.length];
  /// `keepalive` pins whatever backs it (an mmap'd shard, the Dataset's
  /// matrix) — the view dies when the Panel is dropped.
  struct Panel {
    linalg::ConstMatrixView view{nullptr, 0, 0, 0};
    std::shared_ptr<const void> keepalive;
  };

  /// The raw (unnormalized) activity window of epoch `idx`.
  [[nodiscard]] virtual Panel epoch_panel(std::size_t idx) const = 0;
};

/// Zero-copy adapter over an in-memory Dataset.  Borrows by default; the
/// rvalue constructor takes ownership (CLI helpers hand a loaded Dataset
/// straight to the view without keeping it alive separately).
class InMemoryView final : public DatasetView {
 public:
  explicit InMemoryView(const Dataset& dataset) : dataset_(&dataset) {}
  explicit InMemoryView(Dataset&& dataset)
      : owned_(std::make_unique<Dataset>(std::move(dataset))),
        dataset_(owned_.get()) {}

  [[nodiscard]] const std::string& name() const override {
    return dataset_->name();
  }
  [[nodiscard]] std::size_t voxels() const override {
    return dataset_->voxels();
  }
  [[nodiscard]] std::size_t timepoints() const override {
    return dataset_->timepoints();
  }
  [[nodiscard]] std::int32_t subjects() const override {
    return dataset_->subjects();
  }
  [[nodiscard]] const std::vector<Epoch>& epochs() const override {
    return dataset_->epochs();
  }
  [[nodiscard]] Panel epoch_panel(std::size_t idx) const override;

  [[nodiscard]] const Dataset& dataset() const { return *dataset_; }

 private:
  std::unique_ptr<Dataset> owned_;  // set only for the owning constructor
  const Dataset* dataset_;
};

/// View-based twins of normalize_epochs (dataset.hpp).  The Dataset
/// overloads delegate here through InMemoryView, so every backend runs the
/// same copy-then-normalize loop and stays bit-identical.
[[nodiscard]] NormalizedEpochs normalize_epochs(const DatasetView& view);
[[nodiscard]] NormalizedEpochs normalize_epochs(
    const DatasetView& view, const std::vector<std::size_t>& epoch_indices);

/// Normalizes a single epoch panel into `out` ([voxels x length], already
/// sized).  The shared kernel behind normalize_epochs and the streamed
/// loaders — one implementation keeps all paths bit-identical.
void normalize_epoch_panel(const DatasetView::Panel& panel,
                           linalg::MatrixView out);

}  // namespace fcma::fmri
