// Subject-sharded on-disk dataset store (fcma.shards.v1).
//
// The out-of-core backend of DatasetView: `fcma shard` slices a dataset
// into one binary file per subject — the subject's [voxels x t_span]
// activity window as 64-byte-aligned voxel rows behind a checksummed
// header — plus a small JSON manifest.  ShardStoreView mmaps shard
// payloads read-only on demand and unmaps them when the last Panel
// pinning a shard is dropped, so resident bytes track what compute is
// actually touching instead of the dataset size.
//
// On-disk layout for stem `S`:
//   S.shards       JSON manifest {schema, voxels, timepoints, subjects,
//                  shards: [{subject, file, t0, t_len, row_stride,
//                  payload_bytes, checksum(hex)}]}
//   S.sNNN.shard   header (magic "FCMS", version, subject, geometry,
//                  FNV-1a payload checksum) + page-aligned float payload
//   S.epochs       the standard epoch-label text file (io.hpp)
//
// All writes are atomic (tmp + rename, like cluster/checkpoint); headers
// are validated at open and payload checksums on first map, so torn or
// corrupted shards throw fcma::Error instead of feeding the pipeline.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fmri/dataset_view.hpp"

namespace fcma::fmri {

/// Writes `dataset` as a subject-sharded store under `stem` (manifest,
/// per-subject shard files, epoch labels).  Float bits are copied
/// verbatim, so a round-trip is bit-identical.
void write_shard_store(const std::string& stem, const Dataset& dataset);

/// True when a shard-store manifest exists at `<stem>.shards`.
[[nodiscard]] bool shard_store_exists(const std::string& stem);

/// DatasetView over an on-disk shard store.  Thread-safe: panels may be
/// requested concurrently; each shard is mapped at most once at a time and
/// shared by every live Panel into it.
class ShardStoreView final : public DatasetView {
 public:
  /// One manifest entry (validated against the shard file's own header).
  struct Shard {
    std::string path;                ///< resolved, openable path
    std::int32_t subject = 0;
    std::uint64_t t0 = 0;            ///< first timepoint covered
    std::uint64_t t_len = 0;         ///< timepoints covered
    std::uint64_t row_stride = 0;    ///< floats between voxel rows
    std::uint64_t payload_bytes = 0;
    std::uint64_t checksum = 0;      ///< FNV-1a 64 over the payload
  };

  ShardStoreView(std::string name, std::size_t voxels,
                 std::size_t timepoints, std::int32_t subjects,
                 std::vector<Epoch> epochs, std::vector<Shard> shards);
  ~ShardStoreView() override;

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::size_t voxels() const override { return voxels_; }
  [[nodiscard]] std::size_t timepoints() const override {
    return timepoints_;
  }
  [[nodiscard]] std::int32_t subjects() const override { return subjects_; }
  [[nodiscard]] const std::vector<Epoch>& epochs() const override {
    return epochs_;
  }
  [[nodiscard]] Panel epoch_panel(std::size_t idx) const override;

  [[nodiscard]] const std::vector<Shard>& shards() const { return shards_; }
  /// Shards currently mapped (for tests asserting unmap-on-release).
  [[nodiscard]] std::size_t mapped_shards() const;

 private:
  struct Mapping;

  std::string name_;
  std::size_t voxels_ = 0;
  std::size_t timepoints_ = 0;
  std::int32_t subjects_ = 0;
  std::vector<Epoch> epochs_;
  std::vector<Shard> shards_;  // index == subject id

  mutable std::mutex mu_;
  mutable std::vector<std::weak_ptr<Mapping>> live_;  // per shard
  mutable std::vector<bool> verified_;  // payload checksum checked once
};

/// Opens the shard store at `stem`; throws fcma::Error on a missing or
/// malformed manifest, bad shard headers, or truncated shard files.
[[nodiscard]] std::unique_ptr<ShardStoreView> open_shard_store(
    const std::string& stem, const std::string& name);

/// Opens `stem` as whichever backend is present: the shard store when a
/// `<stem>.shards` manifest exists, otherwise the in-memory FCMB dataset
/// (io.hpp) wrapped in an owning InMemoryView.
[[nodiscard]] std::unique_ptr<DatasetView> open_dataset_view(
    const std::string& stem, const std::string& name);

}  // namespace fcma::fmri
