// In-memory model of a labeled fMRI dataset.
//
// FCMA's input (paper §3.1) is a 4D scan flattened to [voxels x time] plus a
// list of labeled time epochs: contiguous windows during which the subject
// performed one of two task conditions.  Datasets span multiple subjects;
// the within-subject normalization and the leave-one-subject-out protocols
// depend on the subject structure, so it is first-class here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace fcma::fmri {

/// One labeled time epoch of interest.
struct Epoch {
  std::int32_t subject = 0;   ///< owning subject, 0-based
  std::int32_t label = 0;     ///< experimental condition: 0 or 1
  std::uint32_t start = 0;    ///< first time point (column of the data)
  std::uint32_t length = 0;   ///< number of time points
};

/// Labeled multi-subject fMRI dataset: activity matrix + epoch metadata.
class Dataset {
 public:
  Dataset() = default;

  /// Takes ownership of the [voxels x time] activity matrix.
  Dataset(std::string name, linalg::Matrix data, std::vector<Epoch> epochs,
          std::int32_t subjects);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t voxels() const { return data_.rows(); }
  [[nodiscard]] std::size_t timepoints() const { return data_.cols(); }
  [[nodiscard]] std::int32_t subjects() const { return subjects_; }
  [[nodiscard]] const std::vector<Epoch>& epochs() const { return epochs_; }
  /// Epochs per subject; 0 for an empty (default-constructed) dataset.
  [[nodiscard]] std::size_t epochs_per_subject() const {
    if (subjects_ <= 0) return 0;
    return epochs_.size() / static_cast<std::size_t>(subjects_);
  }

  [[nodiscard]] const linalg::Matrix& data() const { return data_; }
  [[nodiscard]] linalg::Matrix& data() { return data_; }

  /// Indices (into epochs()) owned by `subject`, in time order.
  [[nodiscard]] std::vector<std::size_t> epochs_of_subject(
      std::int32_t subject) const;

  /// Ground-truth informative voxels for synthetic data (empty for real
  /// data).  Used only by tests and example analyses to validate recovery.
  [[nodiscard]] const std::vector<std::uint32_t>& informative_voxels() const {
    return informative_;
  }
  void set_informative_voxels(std::vector<std::uint32_t> v) {
    informative_ = std::move(v);
  }

  /// Validates internal consistency (epoch windows inside the scan, labels
  /// binary, epochs per subject uniform); throws fcma::Error on violation.
  void validate() const;

 private:
  std::string name_;
  linalg::Matrix data_;           // [voxels x timepoints]
  std::vector<Epoch> epochs_;     // subject-major, time order
  std::int32_t subjects_ = 0;
  std::vector<std::uint32_t> informative_;
};

/// Extracts and eq.2-normalizes the epoch windows of `dataset` into a
/// per-epoch stack of [voxels x epoch_length] matrices, the form stage 1
/// consumes.  Epoch e of the result is normalized so that the dot product
/// of two voxel rows is their Pearson correlation during that epoch.
struct NormalizedEpochs {
  /// One matrix per epoch, each [voxels x epoch_length].
  std::vector<linalg::Matrix> per_epoch;
  /// Copy of the source epoch metadata, same order.
  std::vector<Epoch> meta;
};

[[nodiscard]] NormalizedEpochs normalize_epochs(const Dataset& dataset);

/// Normalizes a subset of epochs, identified by index into dataset.epochs().
[[nodiscard]] NormalizedEpochs normalize_epochs(
    const Dataset& dataset, const std::vector<std::size_t>& epoch_indices);

}  // namespace fcma::fmri
