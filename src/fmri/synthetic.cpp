#include "fmri/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace fcma::fmri {

namespace {

// Weight of the scanner-wide background latent every voxel carries.
constexpr double kGlobalLoad = 0.15;
// Std-dev of the per-subject jitter applied to informative loadings.
constexpr double kSubjectJitter = 0.1;

// Fills `out` with a unit-variance AR(1) sequence driven by `rng`.
void ar1_series(Rng& rng, double rho, std::vector<double>& out) {
  const double innov_sd = std::sqrt(std::max(1e-9, 1.0 - rho * rho));
  double prev = rng.gaussian();
  for (double& v : out) {
    v = prev;
    prev = rho * prev + innov_sd * rng.gaussian();
  }
}

// Core generation over an explicit group assignment (0 = noise, 1 = group
// A, 2 = group B).  `informative` must list exactly the voxels with a
// non-zero group, ascending.
Dataset generate_with_groups(const DatasetSpec& spec,
                             std::vector<std::uint32_t> informative,
                             const std::vector<std::uint8_t>& group,
                             Rng& master) {
  FCMA_CHECK(spec.subjects > 0 && spec.epochs_total > 0, "empty spec");
  FCMA_CHECK(spec.epochs_total % static_cast<std::size_t>(spec.subjects) == 0,
             "epochs must divide evenly across subjects");
  const std::size_t eps = spec.epochs_per_subject();
  FCMA_CHECK(eps % 2 == 0, "need an even epoch count per subject");
  FCMA_CHECK(group.size() == spec.voxels, "group assignment size mismatch");

  const std::size_t t_total = spec.epochs_total * spec.epoch_length;
  linalg::Matrix data(spec.voxels, t_total);

  // Epoch metadata: per subject, alternating labels.
  std::vector<Epoch> epochs;
  epochs.reserve(spec.epochs_total);
  std::uint32_t cursor = 0;
  for (std::int32_t s = 0; s < spec.subjects; ++s) {
    for (std::size_t e = 0; e < eps; ++e) {
      epochs.push_back(Epoch{
          .subject = s,
          .label = static_cast<std::int32_t>(e % 2),
          .start = cursor,
          .length = static_cast<std::uint32_t>(spec.epoch_length)});
      cursor += static_cast<std::uint32_t>(spec.epoch_length);
    }
  }

  // Latent signals: per epoch we need {shared, la, lb, global}.
  Rng latent_rng = master.fork(1);
  std::vector<double> shared(spec.epoch_length);
  std::vector<double> la(spec.epoch_length);
  std::vector<double> lb(spec.epoch_length);
  std::vector<double> global(spec.epoch_length);

  // Per-(voxel, subject) loading jitter.
  Rng jitter_rng = master.fork(2);
  std::vector<float> subject_gain(
      static_cast<std::size_t>(spec.subjects) * spec.voxels);
  for (auto& g : subject_gain) {
    g = static_cast<float>(1.0 + kSubjectJitter * jitter_rng.gaussian());
  }

  // Generate epoch by epoch; voxel streams fork per (voxel, epoch) so the
  // generator's output is independent of iteration order.
  std::vector<double> noise(spec.epoch_length);
  for (std::size_t e = 0; e < epochs.size(); ++e) {
    const Epoch& ep = epochs[e];
    ar1_series(latent_rng, spec.ar1, shared);
    ar1_series(latent_rng, spec.ar1, la);
    ar1_series(latent_rng, spec.ar1, lb);
    ar1_series(latent_rng, spec.ar1, global);
    for (std::size_t v = 0; v < spec.voxels; ++v) {
      Rng noise_rng = master.fork(1000 + e * spec.voxels + v);
      ar1_series(noise_rng, spec.ar1, noise);
      const float gain =
          subject_gain[static_cast<std::size_t>(ep.subject) * spec.voxels + v];
      const std::vector<double>* latent = nullptr;
      if (group[v] == 1) {
        latent = (ep.label == 0) ? &shared : &la;
      } else if (group[v] == 2) {
        latent = (ep.label == 0) ? &shared : &lb;
      }
      float* dst = data.row(v) + ep.start;
      for (std::size_t t = 0; t < spec.epoch_length; ++t) {
        double x = kGlobalLoad * global[t] + noise[t];
        if (latent != nullptr) x += spec.signal * gain * (*latent)[t];
        dst[t] = static_cast<float>(x);
      }
    }
  }

  Dataset out(spec.name, std::move(data), std::move(epochs), spec.subjects);
  out.set_informative_voxels(std::move(informative));
  return out;
}

}  // namespace

Dataset generate_synthetic(const DatasetSpec& spec) {
  FCMA_CHECK(spec.voxels >= 8, "need at least 8 voxels");
  FCMA_CHECK(spec.informative >= 2 && spec.informative <= spec.voxels / 2,
             "informative voxel count out of range");
  Rng master(spec.seed);

  // Select informative voxels (groups A and B) by partial shuffle.
  std::vector<std::uint32_t> perm(spec.voxels);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::size_t i = 0; i < spec.informative; ++i) {
    const std::size_t j = i + master.uniform_index(spec.voxels - i);
    std::swap(perm[i], perm[j]);
  }
  std::vector<std::uint32_t> informative(perm.begin(),
                                         perm.begin() + spec.informative);
  std::sort(informative.begin(), informative.end());
  // Group assignment: alternate sorted informative voxels between A and B
  // so the groups are spatially interleaved.
  std::vector<std::uint8_t> group(spec.voxels, 0);
  for (std::size_t i = 0; i < informative.size(); ++i) {
    group[informative[i]] = static_cast<std::uint8_t>(1 + (i % 2));
  }
  return generate_with_groups(spec, std::move(informative), group, master);
}

VolumetricDataset generate_synthetic_volumetric(const DatasetSpec& spec,
                                                const VolumeGeometry& geometry,
                                                std::size_t blobs) {
  FCMA_CHECK(blobs >= 1, "need at least one blob");
  BrainMask mask = BrainMask::ellipsoid(geometry);
  DatasetSpec actual = spec;
  actual.voxels = mask.voxels();
  FCMA_CHECK(actual.informative >= blobs, "fewer informative voxels than blobs");
  FCMA_CHECK(actual.informative <= actual.voxels / 2,
             "informative voxel count out of range for this mask");
  Rng master(spec.seed);

  // Grow `blobs` compact spherical-ish clusters by breadth-first expansion
  // from random in-mask seeds, alternating connectivity groups per blob.
  // Group 3 marks a one-voxel exclusion halo around finished blobs so that
  // separately planted ROIs never touch (they must stay distinct clusters).
  constexpr std::uint8_t kHalo = 3;
  std::vector<std::uint8_t> group(actual.voxels, 0);
  std::vector<std::uint32_t> informative;
  const std::size_t per_blob = actual.informative / blobs;
  static constexpr int kNeighbors[6][3] = {{1, 0, 0},  {-1, 0, 0},
                                           {0, 1, 0},  {0, -1, 0},
                                           {0, 0, 1},  {0, 0, -1}};
  for (std::size_t b = 0; b < blobs; ++b) {
    const std::size_t want =
        b + 1 == blobs ? actual.informative - informative.size() : per_blob;
    // Seed: a random unclaimed mask voxel.
    std::uint32_t seed = 0;
    do {
      seed = static_cast<std::uint32_t>(master.uniform_index(actual.voxels));
    } while (group[seed] != 0);
    const auto blob_group = static_cast<std::uint8_t>(1 + (b % 2));
    std::deque<std::uint32_t> frontier{seed};
    std::size_t claimed = 0;
    while (claimed < want && !frontier.empty()) {
      const std::uint32_t v = frontier.front();
      frontier.pop_front();
      if (group[v] != 0) continue;
      group[v] = blob_group;
      informative.push_back(v);
      ++claimed;
      const Coord c = mask.coord(v);
      for (const auto& d : kNeighbors) {
        const std::int64_t nm =
            mask.mask_index(Coord{c.x + d[0], c.y + d[1], c.z + d[2]});
        if (nm >= 0 && group[static_cast<std::size_t>(nm)] == 0) {
          frontier.push_back(static_cast<std::uint32_t>(nm));
        }
      }
    }
    FCMA_CHECK(claimed == want, "blob ran out of room; use a larger mask");
    // Halo: block the unclaimed neighbors of this blob.
    for (std::size_t off = informative.size() - claimed;
         off < informative.size(); ++off) {
      const Coord c = mask.coord(informative[off]);
      for (const auto& d : kNeighbors) {
        const std::int64_t nm =
            mask.mask_index(Coord{c.x + d[0], c.y + d[1], c.z + d[2]});
        if (nm >= 0 && group[static_cast<std::size_t>(nm)] == 0) {
          group[static_cast<std::size_t>(nm)] = kHalo;
        }
      }
    }
  }
  std::sort(informative.begin(), informative.end());
  // Halo voxels revert to plain noise for generation.
  for (auto& g : group) {
    if (g == kHalo) g = 0;
  }

  VolumetricDataset out{
      generate_with_groups(actual, informative, group, master),
      std::move(mask),
      {}};
  out.planted_rois = find_clusters(out.mask, informative);
  return out;
}

}  // namespace fcma::fmri
