// Dataset serialization.
//
// Two formats, mirroring the FCMA tooling the paper describes (§3.1: "reads
// in the preprocessed fMRI data ... and the text files specifying the
// labeled time epochs"):
//
//   * a binary activity format ("FCMB"): header + row-major float matrix;
//   * a text epoch-label format: one `subject label start length` line per
//     epoch, '#' comments allowed.
//
// save_dataset/load_dataset bundle both into <stem>.fcmb / <stem>.epochs.
#pragma once

#include <string>
#include <vector>

#include "fmri/dataset.hpp"
#include "fmri/volume.hpp"

namespace fcma::fmri {

/// Writes the activity matrix to `path` in the FCMB binary format.
void save_activity(const std::string& path, const linalg::Matrix& data);

/// Reads an FCMB activity matrix; throws fcma::Error on malformed input.
[[nodiscard]] linalg::Matrix load_activity(const std::string& path);

/// Writes epoch metadata as an epoch-label text file.
void save_epochs(const std::string& path, const std::vector<Epoch>& epochs);

/// Parses an epoch-label text file.
[[nodiscard]] std::vector<Epoch> load_epochs(const std::string& path);

/// Writes a brain mask in the FCMM binary format (geometry + bitmap).
void save_mask(const std::string& path, const BrainMask& mask);

/// Reads an FCMM brain mask.
[[nodiscard]] BrainMask load_mask(const std::string& path);

/// Saves activity + epochs under `<stem>.fcmb` and `<stem>.epochs`.
void save_dataset(const std::string& stem, const Dataset& dataset);

/// Loads a dataset saved by save_dataset; `name` labels the result.
[[nodiscard]] Dataset load_dataset(const std::string& stem,
                                   const std::string& name);

}  // namespace fcma::fmri
