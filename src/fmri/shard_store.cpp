#include "fmri/shard_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/trace.hpp"
#include "fmri/io.hpp"

namespace fcma::fmri {

namespace {

constexpr const char* kManifestSchema = "fcma.shards.v1";
constexpr char kShardMagic[4] = {'F', 'C', 'M', 'S'};
constexpr std::uint32_t kShardVersion = 1;
// Payload offset: one page, so mmap can start exactly at the floats.
constexpr std::uint64_t kPayloadOffset = 4096;
// Voxel rows padded to a 64-byte boundary (16 floats) for aligned loads.
constexpr std::uint64_t kRowAlignFloats = 16;

// Fixed-size binary shard header (written field-by-field, little-endian
// host order — shards are machine-local artifacts like the tune cache).
struct ShardHeader {
  char magic[4];
  std::uint32_t version;
  std::int32_t subject;
  std::uint32_t reserved;
  std::uint64_t voxels;
  std::uint64_t t0;
  std::uint64_t t_len;
  std::uint64_t row_stride;
  std::uint64_t payload_bytes;
  std::uint64_t checksum;
};
static_assert(sizeof(ShardHeader) == 64, "shard header layout drifted");

std::uint64_t fnv1a_init() { return 1469598103934665603ull; }

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File open_file(const std::string& path, const char* mode) {
  File f(std::fopen(path.c_str(), mode));
  FCMA_CHECK(f != nullptr, "cannot open file: " + path);
  return f;
}

void write_exact(std::FILE* f, const void* data, std::size_t bytes,
                 const std::string& path) {
  FCMA_CHECK(std::fwrite(data, 1, bytes, f) == bytes,
             "short write: " + path);
}

void read_exact(std::FILE* f, void* data, std::size_t bytes,
                const std::string& path) {
  FCMA_CHECK(std::fread(data, 1, bytes, f) == bytes, "short read: " + path);
}

std::string shard_basename(const std::string& stem, std::int32_t subject) {
  const std::size_t slash = stem.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? stem : stem.substr(slash + 1);
  char buf[32];
  std::snprintf(buf, sizeof(buf), ".s%03d.shard", subject);
  return base + buf;
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

std::string checksum_hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

// Per-subject time span: the smallest window covering all of its epochs.
void subject_span(const std::vector<Epoch>& epochs, std::int32_t subject,
                  std::uint64_t& t0, std::uint64_t& t_len) {
  std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t hi = 0;
  for (const Epoch& e : epochs) {
    if (e.subject != subject) continue;
    lo = std::min<std::uint64_t>(lo, e.start);
    hi = std::max<std::uint64_t>(hi, std::uint64_t{e.start} + e.length);
  }
  FCMA_CHECK(hi > 0, "subject has no epochs to shard");
  t0 = lo;
  t_len = hi - lo;
}

void atomic_rename(const std::string& tmp, const std::string& path) {
  FCMA_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
             "rename failed: " + path);
}

std::uint64_t require_u64(const json::Value& obj, const char* key,
                          const std::string& path) {
  const json::Value& v = obj.at(key);
  FCMA_CHECK(v.is_number(), std::string("shard manifest missing ") + key +
                                ": " + path);
  return static_cast<std::uint64_t>(v.as_number());
}

}  // namespace

void write_shard_store(const std::string& stem, const Dataset& dataset) {
  dataset.validate();
  const std::string dir = dirname_of(stem);
  std::string manifest;
  manifest += "{\n  \"schema\": \"";
  manifest += kManifestSchema;
  manifest += "\",\n  \"voxels\": " + std::to_string(dataset.voxels());
  manifest += ",\n  \"timepoints\": " + std::to_string(dataset.timepoints());
  manifest += ",\n  \"subjects\": " + std::to_string(dataset.subjects());
  manifest += ",\n  \"shards\": [";

  for (std::int32_t s = 0; s < dataset.subjects(); ++s) {
    std::uint64_t t0 = 0;
    std::uint64_t t_len = 0;
    subject_span(dataset.epochs(), s, t0, t_len);
    const std::uint64_t stride =
        (t_len + kRowAlignFloats - 1) / kRowAlignFloats * kRowAlignFloats;
    const std::uint64_t payload_bytes =
        dataset.voxels() * stride * sizeof(float);

    const std::string file = shard_basename(stem, s);
    const std::string path = dir + file;
    const std::string tmp = path + ".tmp";
    {
      File f = open_file(tmp, "wb");
      // Header placeholder; rewritten once the payload checksum is known.
      ShardHeader hdr{};
      write_exact(f.get(), &hdr, sizeof(hdr), tmp);
      const std::vector<char> pad(kPayloadOffset - sizeof(hdr), 0);
      write_exact(f.get(), pad.data(), pad.size(), tmp);

      // Stream one padded voxel row at a time; float bits copied verbatim.
      std::vector<float> row(stride, 0.0f);
      std::uint64_t sum = fnv1a_init();
      for (std::size_t v = 0; v < dataset.voxels(); ++v) {
        std::memcpy(row.data(), dataset.data().row(v) + t0,
                    t_len * sizeof(float));
        sum = fnv1a(sum, row.data(), stride * sizeof(float));
        write_exact(f.get(), row.data(), stride * sizeof(float), tmp);
      }

      std::memcpy(hdr.magic, kShardMagic, sizeof(kShardMagic));
      hdr.version = kShardVersion;
      hdr.subject = s;
      hdr.voxels = dataset.voxels();
      hdr.t0 = t0;
      hdr.t_len = t_len;
      hdr.row_stride = stride;
      hdr.payload_bytes = payload_bytes;
      hdr.checksum = sum;
      FCMA_CHECK(std::fseek(f.get(), 0, SEEK_SET) == 0, "seek failed: " + tmp);
      write_exact(f.get(), &hdr, sizeof(hdr), tmp);
      FCMA_CHECK(std::fflush(f.get()) == 0, "flush failed: " + tmp);

      manifest += s == 0 ? "\n" : ",\n";
      manifest += "    {\"subject\": " + std::to_string(s);
      manifest += ", \"file\": \"" + file + "\"";
      manifest += ", \"t0\": " + std::to_string(t0);
      manifest += ", \"t_len\": " + std::to_string(t_len);
      manifest += ", \"row_stride\": " + std::to_string(stride);
      manifest += ", \"payload_bytes\": " + std::to_string(payload_bytes);
      manifest += ", \"checksum\": \"" + checksum_hex(sum) + "\"}";
    }
    atomic_rename(tmp, path);
  }
  manifest += "\n  ]\n}\n";

  save_epochs(stem + ".epochs", dataset.epochs());

  const std::string manifest_path = stem + ".shards";
  const std::string tmp = manifest_path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    FCMA_CHECK(f.good(), "cannot open manifest for writing: " + tmp);
    f.write(manifest.data(), static_cast<std::streamsize>(manifest.size()));
    f.flush();
    FCMA_CHECK(f.good(), "manifest write failed: " + tmp);
  }
  atomic_rename(tmp, manifest_path);
}

bool shard_store_exists(const std::string& stem) {
  struct stat st{};
  return ::stat((stem + ".shards").c_str(), &st) == 0;
}

// Refcounted mmap of one shard payload; unmapped when the last Panel
// (or epoch-source load) holding it drops its keepalive.
struct ShardStoreView::Mapping {
  const float* base = nullptr;
  std::size_t bytes = 0;

  ~Mapping() {
    if (base != nullptr) {
      ::munmap(const_cast<float*>(base), bytes);
    }
  }
};

ShardStoreView::ShardStoreView(std::string name, std::size_t voxels,
                               std::size_t timepoints, std::int32_t subjects,
                               std::vector<Epoch> epochs,
                               std::vector<Shard> shards)
    : name_(std::move(name)),
      voxels_(voxels),
      timepoints_(timepoints),
      subjects_(subjects),
      epochs_(std::move(epochs)),
      shards_(std::move(shards)),
      live_(shards_.size()),
      verified_(shards_.size(), false) {
  // Seed the io counters so trace consumers always see the full set.
  trace::count("io/shard_loads", 0);
  trace::count("io/bytes_mapped", 0);
}

ShardStoreView::~ShardStoreView() = default;

std::size_t ShardStoreView::mapped_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& w : live_) {
    if (!w.expired()) ++n;
  }
  return n;
}

DatasetView::Panel ShardStoreView::epoch_panel(std::size_t idx) const {
  FCMA_CHECK(idx < epochs_.size(), "epoch index out of range");
  const Epoch& e = epochs_[idx];
  const auto s = static_cast<std::size_t>(e.subject);
  FCMA_CHECK(s < shards_.size(), "epoch subject has no shard");
  const Shard& shard = shards_[s];
  FCMA_CHECK(e.start >= shard.t0 &&
                 std::uint64_t{e.start} + e.length <= shard.t0 + shard.t_len,
             "epoch window outside its subject shard: " + shard.path);

  std::shared_ptr<Mapping> map;
  {
    std::lock_guard<std::mutex> lock(mu_);
    map = live_[s].lock();
    if (map == nullptr) {
      const int fd = ::open(shard.path.c_str(), O_RDONLY);
      FCMA_CHECK(fd >= 0, "cannot open shard: " + shard.path);
      void* addr =
          ::mmap(nullptr, shard.payload_bytes, PROT_READ, MAP_PRIVATE, fd,
                 static_cast<off_t>(kPayloadOffset));
      ::close(fd);
      FCMA_CHECK(addr != MAP_FAILED, "mmap failed: " + shard.path);
      map = std::make_shared<Mapping>();
      map->base = static_cast<const float*>(addr);
      map->bytes = shard.payload_bytes;
      if (!verified_[s]) {
        // First touch of this shard: verify the payload checksum so silent
        // corruption throws here instead of skewing correlations.
        const std::uint64_t sum =
            fnv1a(fnv1a_init(), map->base, map->bytes);
        FCMA_CHECK(sum == shard.checksum,
                   "shard payload checksum mismatch: " + shard.path);
        verified_[s] = true;
      }
      live_[s] = map;
      trace::count("io/shard_loads");
      trace::count("io/bytes_mapped",
                   static_cast<std::int64_t>(shard.payload_bytes));
    }
  }

  Panel p;
  p.view = linalg::ConstMatrixView{
      map->base + (e.start - shard.t0), voxels_, e.length,
      static_cast<std::size_t>(shard.row_stride)};
  p.keepalive = std::shared_ptr<const void>(map, map->base);
  return p;
}

std::unique_ptr<ShardStoreView> open_shard_store(const std::string& stem,
                                                 const std::string& name) {
  const std::string manifest_path = stem + ".shards";
  const json::Value doc = json::parse_file(manifest_path);
  FCMA_CHECK(doc.at("schema").as_string() == kManifestSchema,
             "not an fcma.shards.v1 manifest: " + manifest_path);
  const auto voxels =
      static_cast<std::size_t>(require_u64(doc, "voxels", manifest_path));
  const auto timepoints =
      static_cast<std::size_t>(require_u64(doc, "timepoints", manifest_path));
  const auto subjects =
      static_cast<std::int32_t>(require_u64(doc, "subjects", manifest_path));
  FCMA_CHECK(voxels > 0 && subjects > 0, "empty shard store: " + manifest_path);

  const std::string dir = dirname_of(manifest_path);
  std::vector<ShardStoreView::Shard> shards;
  for (const json::Value& entry : doc.at("shards").elements()) {
    ShardStoreView::Shard s;
    s.subject =
        static_cast<std::int32_t>(require_u64(entry, "subject", manifest_path));
    FCMA_CHECK(entry.at("file").is_string(),
               "shard manifest missing file: " + manifest_path);
    s.path = dir + entry.at("file").as_string();
    s.t0 = require_u64(entry, "t0", manifest_path);
    s.t_len = require_u64(entry, "t_len", manifest_path);
    s.row_stride = require_u64(entry, "row_stride", manifest_path);
    s.payload_bytes = require_u64(entry, "payload_bytes", manifest_path);
    const std::string hex = entry.at("checksum").as_string();
    char* end = nullptr;
    s.checksum = std::strtoull(hex.c_str(), &end, 16);
    FCMA_CHECK(!hex.empty() && end != nullptr && *end == '\0',
               "bad shard checksum in manifest: " + manifest_path);
    FCMA_CHECK(static_cast<std::size_t>(s.subject) == shards.size(),
               "shard subjects must be dense and ordered: " + manifest_path);
    shards.push_back(std::move(s));
  }
  FCMA_CHECK(shards.size() == static_cast<std::size_t>(subjects),
             "manifest must list one shard per subject: " + manifest_path);

  // Validate every shard header against the manifest before any compute.
  for (const ShardStoreView::Shard& s : shards) {
    File f = open_file(s.path, "rb");
    ShardHeader hdr{};
    read_exact(f.get(), &hdr, sizeof(hdr), s.path);
    FCMA_CHECK(std::memcmp(hdr.magic, kShardMagic, sizeof(kShardMagic)) == 0,
               "not an FCMS shard file: " + s.path);
    FCMA_CHECK(hdr.version == kShardVersion,
               "unsupported shard version: " + s.path);
    FCMA_CHECK(hdr.subject == s.subject && hdr.voxels == voxels &&
                   hdr.t0 == s.t0 && hdr.t_len == s.t_len &&
                   hdr.row_stride == s.row_stride &&
                   hdr.payload_bytes == s.payload_bytes &&
                   hdr.checksum == s.checksum,
               "shard header disagrees with manifest: " + s.path);
    FCMA_CHECK(hdr.row_stride >= hdr.t_len &&
                   hdr.payload_bytes ==
                       hdr.voxels * hdr.row_stride * sizeof(float),
               "inconsistent shard geometry: " + s.path);
    FCMA_CHECK(std::fseek(f.get(), 0, SEEK_END) == 0, "seek failed: " + s.path);
    const long size = std::ftell(f.get());
    FCMA_CHECK(size >= 0 && static_cast<std::uint64_t>(size) ==
                                kPayloadOffset + hdr.payload_bytes,
               "truncated shard file: " + s.path);
  }

  std::vector<Epoch> epochs = load_epochs(stem + ".epochs");
  FCMA_CHECK(!epochs.empty(), "shard store has no epochs: " + stem);

  return std::make_unique<ShardStoreView>(name, voxels, timepoints, subjects,
                                          std::move(epochs),
                                          std::move(shards));
}

std::unique_ptr<DatasetView> open_dataset_view(const std::string& stem,
                                               const std::string& name) {
  if (shard_store_exists(stem)) return open_shard_store(stem, name);
  return std::make_unique<InMemoryView>(load_dataset(stem, name));
}

}  // namespace fcma::fmri
