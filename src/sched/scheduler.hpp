// Work-stealing task scheduler: the one dispatch layer under every level of
// FCMA parallelism (voxel tasks, pipeline stages, panel kernels, cluster
// workers' local work).
//
// The paper's scaling story (§3.1.1, Fig 9) rests on dynamic load
// balancing: voxel tasks vary wildly in cost (selected-feature SVMs, ragged
// fold sizes), so idle workers must pull work instead of waiting on a
// static partition.  A single shared FIFO stops scaling once task grains
// shrink — every push and pop crosses one lock — so this scheduler gives
// each worker its own deque in the Chase–Lev layout: the owner pushes and
// pops at the *bottom* (newest first, cache-hot), thieves steal from the
// *top* (oldest first, the biggest remaining chunks).  Victims are probed
// in randomized order.  Each deque is guarded by its own tiny mutex rather
// than the lock-free Chase–Lev protocol: the hold times are a few
// nanoseconds, contention is spread across W deques + the inbox, and the
// locked form is directly verifiable under ThreadSanitizer (the tsan CTest
// gate runs a dedicated stress suite over it).  The lock-free protocol is a
// drop-in upgrade behind the same interface.
//
// Help-first blocking.  A thread that waits on a TaskGroup (and therefore
// on parallel_for, which is a TaskGroup over range chunks) does not park:
// it drains its own deque and steals until the group completes.  This is
// what makes *nested* parallelism real — a pool task calling parallel_for
// spawns chunks that other workers steal, instead of the old
// inside_worker() inline fallback that serialized the linalg panel kernels
// under task-level parallelism.  It also removes the cross-pool inlining
// bug: worker detection is scoped to the owning scheduler, so a task on
// pool A that fans out on pool B spawns into B and helps B, never inlines.
//
// Determinism contract.  The scheduler never changes *what* is computed,
// only *where*: a task runs start-to-finish on one thread, writes only its
// own output slot, and callers merge results in submission order.  Every
// FCMA protocol built on top (offline, online, cluster) is bit-identical
// to its serial run at any worker count.
//
// Shutdown drains: the destructor completes every task already spawned
// (including tasks those tasks spawn) before the workers exit, so futures
// held past the scheduler's lifetime resolve normally.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace fcma::sched {

class TaskGroup;

class Scheduler {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency, min 1).
  explicit Scheduler(std::size_t threads = 0);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Fire-and-forget: enqueues `fn` for execution.  From a worker of this
  /// scheduler the task lands on that worker's own deque (stealable by the
  /// others); from any other thread it lands on the shared inbox.
  void spawn(std::function<void()> fn);

  /// Enqueues a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    spawn([task] { (*task)(); });
    return future;
  }

  /// Runs fn(lo, hi) over [begin, end) in chunks of `grain`, blocking until
  /// every chunk finishes; rethrows the first chunk exception after all
  /// chunks complete.  The caller helps execute chunks while it waits, so
  /// the call is safe (and genuinely parallel) at any nesting depth and
  /// from workers of *other* schedulers.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Convenience overload: body receives a single index.
  void parallel_for_each(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body);

  /// True when the calling thread is a worker of *this* scheduler (not of
  /// some other pool — the check is instance-scoped).
  [[nodiscard]] bool on_worker_thread() const;

  /// True when the calling thread is a worker of any scheduler in the
  /// process.  Diagnostic only: no dispatch decision keys off this.
  [[nodiscard]] static bool on_any_worker();

  /// Always-on dispatch tallies (relaxed atomics; exact once quiescent).
  struct Stats {
    std::uint64_t local_hits = 0;  ///< tasks a worker popped from its own deque
    std::uint64_t steals = 0;      ///< tasks taken from another worker's deque
    std::uint64_t inbox_hits = 0;  ///< tasks taken from the external inbox
    std::uint64_t executed = 0;    ///< total tasks run to completion
  };
  [[nodiscard]] Stats stats() const;

 private:
  friend class TaskGroup;

  using Task = std::function<void()>;

  /// One Chase–Lev-layout deque: owner uses the back, thieves the front.
  struct Deque {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  /// Takes one task (owner end when `back`, thief end otherwise); on
  /// success the task is already accounted as active.
  bool take(Deque& d, bool back, Task& out);
  /// Randomized sweep over every other worker's deque, then the inbox.
  bool steal_any(std::size_t skip, Task& out);
  /// Pops/steals one runnable task and executes it.  `worker` is this
  /// scheduler's worker index for the calling thread, or npos for external
  /// helpers.  Returns false when nothing was runnable.
  bool run_one(std::size_t worker);
  void execute(Task task, std::size_t worker);
  void worker_loop(std::size_t index);
  void wake_one();

  static constexpr std::size_t kExternal = static_cast<std::size_t>(-1);

  std::vector<std::unique_ptr<Deque>> deques_;  // one per worker
  Deque inbox_;                                 // external submissions
  std::vector<std::string> busy_labels_;        // "sched/worker<i>/busy"
  std::vector<std::string> depth_labels_;       // "sched/worker<i>/queue_depth"
  std::vector<std::thread> workers_;

  // queued_ + active_ together over-approximate outstanding work: a task is
  // counted active *before* it stops being counted queued, so a worker that
  // observes both zero during shutdown can safely exit.
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> active_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stopping_{false};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;

  std::atomic<std::uint64_t> local_hits_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> inbox_hits_{0};
  std::atomic<std::uint64_t> executed_{0};
};

/// Structured join point for a batch of spawned tasks.
///
/// run() spawns a task into the group; wait() blocks until every task of
/// the group has finished, executing other runnable tasks (own deque first,
/// then steals) while it waits, and rethrows the first task exception.  The
/// destructor waits too (without rethrowing), so a group can never outlive
/// its tasks' captured state.
class TaskGroup {
 public:
  explicit TaskGroup(Scheduler& scheduler) : sched_(scheduler) {}
  ~TaskGroup() { wait_no_throw(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Spawns `fn` as a member of this group.
  void run(std::function<void()> fn);

  /// Help-first join: returns once every task run() so far has completed;
  /// rethrows the first stored exception.
  void wait();

 private:
  void wait_no_throw() noexcept;
  void finish(std::exception_ptr error) noexcept;

  Scheduler& sched_;
  std::atomic<std::size_t> pending_{0};
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::exception_ptr error_;  // first failure; guarded by done_mutex_
};

}  // namespace fcma::sched
