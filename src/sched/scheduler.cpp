#include "sched/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"

namespace fcma::sched {

namespace {

/// Identity of the calling thread within the scheduler that owns it.  A
/// worker belongs to exactly one Scheduler for its whole life, so a plain
/// thread_local (set once in worker_loop) is enough; every other thread
/// keeps the null default and is treated as external.
struct WorkerIdentity {
  const Scheduler* sched = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity t_worker;

/// Per-thread victim-selection stream.  Seeded from a process-wide counter
/// so concurrent thieves do not probe victims in lockstep; steal order
/// never affects results (determinism lives in the task-order merge), so
/// the seed does not need to be reproducible.
Rng& thief_rng() {
  static std::atomic<std::uint64_t> next_seed{0x5eedu};
  thread_local Rng rng(next_seed.fetch_add(0x9E3779B97F4A7C15ull,
                                           std::memory_order_relaxed));
  return rng;
}

}  // namespace

Scheduler::Scheduler(std::size_t threads) {
  std::size_t count = threads;
  if (count == 0) {
    count = std::thread::hardware_concurrency();
    if (count == 0) count = 1;
  }
  deques_.reserve(count);
  busy_labels_.reserve(count);
  depth_labels_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    deques_.push_back(std::make_unique<Deque>());
    const std::string worker = "sched/worker" + std::to_string(i);
    busy_labels_.push_back(worker + "/busy");
    depth_labels_.push_back(worker + "/queue_depth");
  }
  // Seed the counter keys at zero so trace sidecars always carry them, even
  // for runs where every pop is a local hit (e.g. a 1-worker host with no
  // stealing to report).
  trace::count("sched/tasks_submitted", 0);
  trace::count("sched/tasks_executed", 0);
  trace::count("sched/local_hits", 0);
  trace::count("sched/steals", 0);
  trace::count("sched/inbox_hits", 0);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    stopping_.store(true, std::memory_order_seq_cst);
  }
  idle_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Scheduler::spawn(std::function<void()> fn) {
  FCMA_CHECK(fn != nullptr, "Scheduler::spawn requires a callable task");
  const bool local = t_worker.sched == this;
  Deque& target = local ? *deques_[t_worker.index] : inbox_;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(target.mutex);
    target.tasks.push_back(std::move(fn));
    depth = target.tasks.size();
    queued_.fetch_add(1, std::memory_order_seq_cst);
  }
  if (trace::enabled()) {
    trace::count("sched/tasks_submitted");
    trace::gauge_max(local ? depth_labels_[t_worker.index]
                           : std::string("sched/inbox/queue_depth"),
                     static_cast<double>(depth));
    trace::gauge_max("sched/max_queue_depth", static_cast<double>(depth));
  }
  wake_one();
}

void Scheduler::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  FCMA_CHECK(grain > 0, "parallel_for requires a positive grain");
  if (begin >= end) return;
  if (end - begin <= grain) {  // single chunk: no dispatch overhead
    body(begin, end);
    return;
  }
  // Capturing `body` by reference is safe: wait() returns only once every
  // chunk has finished (even when one of them threw).
  TaskGroup group(*this);
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = std::min(end, lo + grain);
    group.run([&body, lo, hi] { body(lo, hi); });
  }
  group.wait();
}

void Scheduler::parallel_for_each(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t)>& body) {
  parallel_for(begin, end, 1, [&body](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

bool Scheduler::on_worker_thread() const { return t_worker.sched == this; }

bool Scheduler::on_any_worker() { return t_worker.sched != nullptr; }

Scheduler::Stats Scheduler::stats() const {
  Stats stats;
  stats.local_hits = local_hits_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.inbox_hits = inbox_hits_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  return stats;
}

bool Scheduler::take(Deque& deque, bool back, Task& out) {
  std::lock_guard<std::mutex> lock(deque.mutex);
  if (deque.tasks.empty()) return false;
  if (back) {
    out = std::move(deque.tasks.back());
    deque.tasks.pop_back();
  } else {
    out = std::move(deque.tasks.front());
    deque.tasks.pop_front();
  }
  // Account the task active *before* it stops counting as queued so no
  // observer ever sees queued_ == 0 && active_ == 0 while work remains.
  active_.fetch_add(1, std::memory_order_seq_cst);
  queued_.fetch_sub(1, std::memory_order_seq_cst);
  return true;
}

bool Scheduler::steal_any(std::size_t skip, Task& out) {
  const std::size_t victims = deques_.size();
  const std::size_t start =
      static_cast<std::size_t>(thief_rng().uniform_index(victims));
  for (std::size_t probe = 0; probe < victims; ++probe) {
    const std::size_t victim = (start + probe) % victims;
    if (victim == skip) continue;
    if (take(*deques_[victim], /*back=*/false, out)) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      trace::count("sched/steals");
      return true;
    }
  }
  if (take(inbox_, /*back=*/false, out)) {
    inbox_hits_.fetch_add(1, std::memory_order_relaxed);
    trace::count("sched/inbox_hits");
    return true;
  }
  return false;
}

bool Scheduler::run_one(std::size_t worker) {
  Task task;
  if (worker != kExternal && take(*deques_[worker], /*back=*/true, task)) {
    local_hits_.fetch_add(1, std::memory_order_relaxed);
    trace::count("sched/local_hits");
    execute(std::move(task), worker);
    return true;
  }
  if (steal_any(worker, task)) {
    execute(std::move(task), worker);
    return true;
  }
  return false;
}

void Scheduler::execute(Task task, std::size_t worker) {
  // The active_ decrement (and the shutdown wakeup it may owe) must happen
  // even if the task leaks an exception past us, or the destructor's drain
  // would deadlock; tasks from submit()/TaskGroup never throw here because
  // both wrap the user callable.
  struct ActiveGuard {
    Scheduler& sched;
    ~ActiveGuard() {
      if (sched.active_.fetch_sub(1, std::memory_order_seq_cst) == 1 &&
          sched.stopping_.load(std::memory_order_seq_cst)) {
        { std::lock_guard<std::mutex> lock(sched.idle_mutex_); }
        sched.idle_cv_.notify_all();
      }
    }
  } guard{*this};
  // Counted before the body runs: a task's completion signal (future,
  // TaskGroup::finish) is what publishes the stats to an observer, so every
  // increment sequenced before the body is visible once the task is seen to
  // finish.  Counting after the body would let a waiter observe completion
  // between the body and the increment.
  executed_.fetch_add(1, std::memory_order_relaxed);
  trace::count("sched/tasks_executed");
  if (worker != kExternal && trace::enabled()) {
    // Time the task without an open Span around it: a scoped Span would
    // push "sched/worker<i>/busy" onto the thread's nesting path and every
    // span the task itself records would land under it instead of rooting
    // its own hierarchy (the documented per-thread contract in trace.hpp).
    // record_interval keeps the true endpoints, so each busy period also
    // lands on the worker's timeline lane when event capture is on.
    const auto start = std::chrono::steady_clock::now();
    task();
    trace::record_interval(busy_labels_[worker], start,
                           std::chrono::steady_clock::now());
  } else {
    task();
  }
}

void Scheduler::worker_loop(std::size_t index) {
  t_worker.sched = this;
  t_worker.index = index;
  // Claims this thread's timeline lane (no-op unless tracing was enabled
  // before the scheduler was built — the CLI/bench order).
  trace::set_thread_name("sched/worker" + std::to_string(index),
                         static_cast<int>(index));
  for (;;) {
    if (run_one(index)) continue;
    std::unique_lock<std::mutex> lock(idle_mutex_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    idle_cv_.wait(lock, [this] {
      return queued_.load(std::memory_order_seq_cst) > 0 ||
             (stopping_.load(std::memory_order_seq_cst) &&
              active_.load(std::memory_order_seq_cst) == 0);
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    lock.unlock();
    if (stopping_.load(std::memory_order_seq_cst) &&
        queued_.load(std::memory_order_seq_cst) == 0 &&
        active_.load(std::memory_order_seq_cst) == 0) {
      return;
    }
  }
}

void Scheduler::wake_one() {
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    // The empty critical section orders this notify after any in-progress
    // sleeper has entered wait(); without it the notify could fire between
    // the sleeper's queue check and its wait, and be lost.
    { std::lock_guard<std::mutex> lock(idle_mutex_); }
    idle_cv_.notify_one();
  }
}

void TaskGroup::run(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_seq_cst);
  sched_.spawn([this, fn = std::move(fn)] {
    std::exception_ptr error;
    try {
      fn();
    } catch (...) {
      error = std::current_exception();
    }
    finish(error);
  });
}

void TaskGroup::wait() {
  wait_no_throw();
  std::lock_guard<std::mutex> lock(done_mutex_);
  if (error_) {
    std::exception_ptr error = std::exchange(error_, nullptr);
    std::rethrow_exception(error);
  }
}

void TaskGroup::wait_no_throw() noexcept {
  if (sched_.on_worker_thread()) {
    // Help first: a worker blocked on a nested parallel_for executes its
    // own deque / steals instead of parking, so nesting is genuinely
    // parallel at any depth and the subtasks it just pushed (which only it
    // or a thief can reach) always drain.
    const std::size_t worker = t_worker.index;
    while (pending_.load(std::memory_order_seq_cst) != 0) {
      if (sched_.run_one(worker)) continue;
      // Nothing runnable: the group's remaining tasks are active on other
      // threads.  Park briefly; finish() notifies on the last completion.
      std::unique_lock<std::mutex> lock(done_mutex_);
      done_cv_.wait_for(lock, std::chrono::microseconds(200), [this] {
        return pending_.load(std::memory_order_seq_cst) == 0;
      });
    }
    return;
  }
  // External waiter: park instead of helping.  Greedy helping here would
  // add an extra compute thread on top of the full worker set — measurably
  // worse on a saturated machine (the workers already cover every core) —
  // so the external thread only steps in as a *stall rescue*: if a full
  // rescue window passes with work queued but nothing dequeued (e.g. every
  // worker is blocked inside a user task), it drains tasks itself.  That
  // keeps the liveness guarantee of help-first without the oversubscription.
  std::uint64_t last_executed =
      sched_.executed_.load(std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(done_mutex_);
  while (pending_.load(std::memory_order_seq_cst) != 0) {
    const bool done =
        done_cv_.wait_for(lock, std::chrono::milliseconds(20), [this] {
          return pending_.load(std::memory_order_seq_cst) == 0;
        });
    if (done) return;
    const std::uint64_t executed =
        sched_.executed_.load(std::memory_order_relaxed);
    const bool stalled =
        executed == last_executed &&
        sched_.queued_.load(std::memory_order_seq_cst) > 0;
    last_executed = executed;
    if (stalled) {
      lock.unlock();
      while (pending_.load(std::memory_order_seq_cst) != 0 &&
             sched_.run_one(Scheduler::kExternal)) {
      }
      lock.lock();
    }
  }
}

void TaskGroup::finish(std::exception_ptr error) noexcept {
  std::lock_guard<std::mutex> lock(done_mutex_);
  if (error && !error_) error_ = error;
  if (pending_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    done_cv_.notify_all();
  }
}

}  // namespace fcma::sched
