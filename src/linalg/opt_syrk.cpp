#include <algorithm>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/aligned.hpp"
#include "common/trace.hpp"
#include "linalg/opt.hpp"

namespace fcma::linalg::opt {

namespace {

constexpr std::size_t kVec = kNativeSimdWidthF32;
// Micro-tile width in floats: one vector register of output columns.
constexpr std::size_t kMicroCols = kVec;

// Packs A's columns [k0, k1) for all M rows into a_local[M][kb], then its
// transpose at_local[kb][M] (paper Fig 7: blocks of A_local are transposed
// into A^T_local before the micro-kernel runs).
void pack_panel(ConstMatrixView a, std::size_t k0, std::size_t k1,
                float* FCMA_RESTRICT a_local, float* FCMA_RESTRICT at_local) {
  const std::size_t m = a.rows;
  const std::size_t kb = k1 - k0;
  for (std::size_t i = 0; i < m; ++i) {
    std::memcpy(a_local + i * kb, a.row(i) + k0, kb * sizeof(float));
  }
  for (std::size_t k = 0; k < kb; ++k) {
    for (std::size_t i = 0; i < m; ++i) {
      at_local[k * m + i] = a_local[i * kb + k];
    }
  }
}

// Micro-kernel hot path: one full 9-row x 16-col tile.  Both the tile
// bounds AND the panel depth KB are compile-time constants — with a runtime
// kb the strided a_col loads defeat unrolling (GCC falls back to gathers
// and spills the accumulator block).
template <std::size_t KB>
void micro_kernel_full(const float* FCMA_RESTRICT a_local,
                       const float* FCMA_RESTRICT at_local, std::size_t m,
                       std::size_t i0, std::size_t j0,
                       float* FCMA_RESTRICT c, std::size_t ldc) {
  float acc[kSyrkMicroRows][kMicroCols] = {};
  for (std::size_t k = 0; k < KB; ++k) {
    const float* FCMA_RESTRICT at_row = at_local + k * m + j0;
    const float* FCMA_RESTRICT a_col = a_local + i0 * KB + k;
    for (std::size_t r = 0; r < kSyrkMicroRows; ++r) {
      const float av = a_col[r * KB];
      for (std::size_t wv = 0; wv < kMicroCols; ++wv) {
        acc[r][wv] += av * at_row[wv];
      }
    }
  }
  for (std::size_t r = 0; r < kSyrkMicroRows; ++r) {
    float* FCMA_RESTRICT crow = c + (i0 + r) * ldc + j0;
    for (std::size_t wv = 0; wv < kMicroCols; ++wv) crow[wv] += acc[r][wv];
  }
}

// Ragged edges of the triangle (short rows and/or short columns).
void micro_kernel_edge(const float* FCMA_RESTRICT a_local,
                       const float* FCMA_RESTRICT at_local, std::size_t m,
                       std::size_t kb, std::size_t i0, std::size_t rows,
                       std::size_t j0, std::size_t cols,
                       float* FCMA_RESTRICT c, std::size_t ldc) {
  float acc[kSyrkMicroRows][kMicroCols] = {};
  for (std::size_t k = 0; k < kb; ++k) {
    const float* FCMA_RESTRICT at_row = at_local + k * m + j0;
    for (std::size_t r = 0; r < rows; ++r) {
      const float av = a_local[(i0 + r) * kb + k];
      for (std::size_t wv = 0; wv < cols; ++wv) {
        acc[r][wv] += av * at_row[wv];
      }
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    float* crow = c + (i0 + r) * ldc + j0;
    for (std::size_t wv = 0; wv < cols; ++wv) crow[wv] += acc[r][wv];
  }
}

void micro_kernel(const float* FCMA_RESTRICT a_local,
                  const float* FCMA_RESTRICT at_local, std::size_t m,
                  std::size_t kb, std::size_t i0, std::size_t rows,
                  std::size_t j0, std::size_t cols,
                  float* FCMA_RESTRICT c, std::size_t ldc) {
  if (rows == kSyrkMicroRows && cols == kMicroCols && kb == kSyrkPanelK) {
    micro_kernel_full<kSyrkPanelK>(a_local, at_local, m, i0, j0, c, ldc);
  } else {
    micro_kernel_edge(a_local, at_local, m, kb, i0, rows, j0, cols, c, ldc);
  }
}

// Accumulates the contribution of panel [k0, k1) into c (ldc-strided, full
// lower triangle in micro-tile granularity).
void panel_contribution(ConstMatrixView a, std::size_t k0, std::size_t k1,
                        float* a_local, float* at_local, float* c,
                        std::size_t ldc) {
  const std::size_t m = a.rows;
  pack_panel(a, k0, k1, a_local, at_local);
  const std::size_t kb = k1 - k0;
  for (std::size_t i0 = 0; i0 < m; i0 += kSyrkMicroRows) {
    const std::size_t rows = std::min(kSyrkMicroRows, m - i0);
    // Only tiles intersecting the lower triangle are computed; the final
    // mirror step fills the upper triangle.
    for (std::size_t j0 = 0; j0 <= i0 + rows - 1; j0 += kMicroCols) {
      const std::size_t cols = std::min(kMicroCols, m - j0);
      micro_kernel(a_local, at_local, m, kb, i0, rows, j0, cols, c, ldc);
    }
  }
}

// Mirrors the computed lower triangle into the upper one.
void mirror_upper(MatrixView c) {
  for (std::size_t i = 0; i < c.rows; ++i) {
    for (std::size_t j = i + 1; j < c.cols; ++j) c(i, j) = c(j, i);
  }
}

}  // namespace

void syrk(ConstMatrixView a, MatrixView c) {
  FCMA_CHECK(c.rows == a.rows && c.cols == a.rows, "syrk: bad C shape");
  const trace::Span span("syrk");
  const std::size_t m = a.rows;
  const std::size_t n = a.cols;
  for (std::size_t i = 0; i < m; ++i) {
    std::memset(c.row(i), 0, m * sizeof(float));
  }
  AlignedBuffer<float> a_local(m * kSyrkPanelK);
  AlignedBuffer<float> at_local(kSyrkPanelK * m);
  for (std::size_t k0 = 0; k0 < n; k0 += kSyrkPanelK) {
    const std::size_t k1 = std::min(n, k0 + kSyrkPanelK);
    panel_contribution(a, k0, k1, a_local.data(), at_local.data(), c.data,
                       c.ld);
  }
  mirror_upper(c);
}

void syrk(ConstMatrixView a, MatrixView c, threading::ThreadPool& pool) {
  FCMA_CHECK(c.rows == a.rows && c.cols == a.rows, "syrk: bad C shape");
  const trace::Span span("syrk");
  const std::size_t m = a.rows;
  const std::size_t n = a.cols;
  for (std::size_t i = 0; i < m; ++i) {
    std::memset(c.row(i), 0, m * sizeof(float));
  }
  // Each task owns a contiguous range of panels, accumulates into a private
  // C, and merges under the lock — the paper's OpenMP-lock scheme.
  std::mutex c_mutex;
  const std::size_t panels = (n + kSyrkPanelK - 1) / kSyrkPanelK;
  const std::size_t tasks = std::min<std::size_t>(pool.size() * 2, panels);
  const std::size_t panels_per_task = (panels + tasks - 1) / tasks;
  threading::parallel_for(
      pool, 0, panels, panels_per_task,
      [&](std::size_t p0, std::size_t p1) {
        AlignedBuffer<float> a_local(m * kSyrkPanelK);
        AlignedBuffer<float> at_local(kSyrkPanelK * m);
        AlignedBuffer<float> c_local(m * m);
        std::memset(c_local.data(), 0, m * m * sizeof(float));
        for (std::size_t p = p0; p < p1; ++p) {
          const std::size_t k0 = p * kSyrkPanelK;
          const std::size_t k1 = std::min(n, k0 + kSyrkPanelK);
          panel_contribution(a, k0, k1, a_local.data(), at_local.data(),
                             c_local.data(), m);
        }
        const std::lock_guard<std::mutex> lock(c_mutex);
        for (std::size_t i = 0; i < m; ++i) {
          float* FCMA_RESTRICT dst = c.row(i);
          const float* FCMA_RESTRICT src = c_local.data() + i * m;
          for (std::size_t j = 0; j <= i; ++j) dst[j] += src[j];
        }
      });
  mirror_upper(c);
}

void syrk_instrumented(ConstMatrixView a, MatrixView c,
                       memsim::Instrument& ins, unsigned model_lanes) {
  FCMA_CHECK(c.rows == a.rows && c.cols == a.rows, "syrk: bad C shape");
  const std::size_t m = a.rows;
  const std::size_t n = a.cols;
  for (std::size_t i = 0; i < m; ++i) {
    std::memset(c.row(i), 0, m * sizeof(float));
  }
  AlignedBuffer<float> a_local(m * kSyrkPanelK);
  AlignedBuffer<float> at_local(kSyrkPanelK * m);
  for (std::size_t k0 = 0; k0 < n; k0 += kSyrkPanelK) {
    const std::size_t k1 = std::min(n, k0 + kSyrkPanelK);
    const std::size_t kb = k1 - k0;
    // Packing: vector copy of each row slice, then a blocked register
    // transpose (16x16 vector loads/stores, as the generated KNC kernels
    // do) into A^T_local.
    for (std::size_t i = 0; i < m; ++i) {
      std::memcpy(a_local.data() + i * kb, a.row(i) + k0, kb * sizeof(float));
      for (std::size_t k = 0; k < kb; k += model_lanes) {
        const auto lanes = static_cast<unsigned>(
            std::min<std::size_t>(model_lanes, kb - k));
        ins.load(a.row(i) + k0 + k, lanes);
        ins.store(a_local.data() + i * kb + k, lanes);
      }
    }
    for (std::size_t k = 0; k < kb; ++k) {
      for (std::size_t i = 0; i < m; ++i) {
        at_local[k * m + i] = a_local[i * kb + k];
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t k = 0; k < kb; k += model_lanes) {
        ins.load(&a_local[i * kb + k],
                 static_cast<unsigned>(
                     std::min<std::size_t>(model_lanes, kb - k)));
      }
    }
    for (std::size_t k = 0; k < kb; ++k) {
      for (std::size_t i = 0; i < m; i += model_lanes) {
        ins.store(&at_local[k * m + i],
                  static_cast<unsigned>(
                      std::min<std::size_t>(model_lanes, m - i)));
      }
    }
    // Micro-kernel sweep over the lower-triangle tiles.
    for (std::size_t i0 = 0; i0 < m; i0 += kSyrkMicroRows) {
      const std::size_t rows = std::min(kSyrkMicroRows, m - i0);
      for (std::size_t j0 = 0; j0 <= i0 + rows - 1; j0 += model_lanes) {
        const auto cols = static_cast<unsigned>(
            std::min<std::size_t>(model_lanes, m - j0));
        for (std::size_t k = 0; k < kb; ++k) {
          ins.load(&at_local[k * m + j0], cols);  // one panel vector load
          for (std::size_t r = 0; r < rows; ++r) {
            ins.load_broadcast(&a_local[(i0 + r) * kb + k], model_lanes);
            ins.arith(cols, 1, 2ull * cols);
          }
        }
        // Scalar recomputation + accumulate into C.
        for (std::size_t r = 0; r < rows; ++r) {
          float* crow = c.row(i0 + r) + j0;
          for (unsigned wv = 0; wv < cols; ++wv) {
            float acc = 0.0f;
            for (std::size_t k = 0; k < kb; ++k) {
              acc += a_local[(i0 + r) * kb + k] * at_local[k * m + j0 + wv];
            }
            crow[wv] += acc;
          }
          ins.load(crow, cols);
          ins.store(crow, cols);
          ins.arith(cols, 1, 0);  // C-tile accumulate add
        }
      }
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) c(i, j) = c(j, i);
  }
}

}  // namespace fcma::linalg::opt
