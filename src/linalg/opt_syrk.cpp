#include <algorithm>
#include <cstring>
#include <vector>

#include "common/aligned.hpp"
#include "common/trace.hpp"
#include "common/workspace.hpp"
#include "linalg/opt.hpp"
#include "linalg/simd.hpp"

namespace fcma::linalg::opt {

namespace {

// Packs A's columns [k0, k1) for all M rows into a_local[M][kb], then its
// transpose at_local[kb][M] (paper Fig 7: blocks of A_local are transposed
// into A^T_local before the micro-kernel runs).
void pack_panel(ConstMatrixView a, std::size_t k0, std::size_t k1,
                float* FCMA_RESTRICT a_local, float* FCMA_RESTRICT at_local) {
  const std::size_t m = a.rows;
  const std::size_t kb = k1 - k0;
  for (std::size_t i = 0; i < m; ++i) {
    std::memcpy(a_local + i * kb, a.row(i) + k0, kb * sizeof(float));
  }
  for (std::size_t k = 0; k < kb; ++k) {
    for (std::size_t i = 0; i < m; ++i) {
      at_local[k * m + i] = a_local[i * kb + k];
    }
  }
}

// Accumulates the contribution of panel [k0, k1) into c (ldc-strided, full
// lower triangle in micro-tile granularity).  The tile sweep and its
// register-blocked micro-kernel live in the runtime-dispatched simd layer;
// micro_rows picks between the 9- and 6-row table variants.
void panel_contribution(ConstMatrixView a, std::size_t k0, std::size_t k1,
                        float* a_local, float* at_local, float* c,
                        std::size_t ldc, std::size_t micro_rows) {
  pack_panel(a, k0, k1, a_local, at_local);
  const auto& kernels = simd::kernels();
  const auto panel_fn =
      micro_rows == 6 ? kernels.syrk_panel_r6 : kernels.syrk_panel;
  panel_fn(a_local, at_local, a.rows, k1 - k0, c, ldc);
}

// Mirrors the computed lower triangle into the upper one.
void mirror_upper(MatrixView c) {
  for (std::size_t i = 0; i < c.rows; ++i) {
    for (std::size_t j = i + 1; j < c.cols; ++j) c(i, j) = c(j, i);
  }
}

}  // namespace

void syrk_with(ConstMatrixView a, MatrixView c,
               const tune::SyrkGeometry& geo) {
  FCMA_CHECK(c.rows == a.rows && c.cols == a.rows, "syrk: bad C shape");
  FCMA_CHECK(geo.panel_k > 0 && geo.panel_k % kSyrkNumericK == 0,
             "syrk: panel_k must be a positive multiple of kSyrkNumericK");
  const trace::Span span("syrk");
  const std::size_t m = a.rows;
  const std::size_t n = a.cols;
  for (std::size_t i = 0; i < m; ++i) {
    std::memset(c.row(i), 0, m * sizeof(float));
  }
  auto& workspace = core::Workspace::local();
  auto a_local = workspace.acquire(m * geo.panel_k);
  auto at_local = workspace.acquire(geo.panel_k * m);
  for (std::size_t k0 = 0; k0 < n; k0 += geo.panel_k) {
    const std::size_t k1 = std::min(n, k0 + geo.panel_k);
    panel_contribution(a, k0, k1, a_local.data(), at_local.data(), c.data,
                       c.ld, geo.micro_rows);
  }
  mirror_upper(c);
}

void syrk_with(ConstMatrixView a, MatrixView c, const tune::SyrkGeometry& geo,
               threading::ThreadPool& pool) {
  FCMA_CHECK(c.rows == a.rows && c.cols == a.rows, "syrk: bad C shape");
  FCMA_CHECK(geo.panel_k > 0 && geo.panel_k % kSyrkNumericK == 0,
             "syrk: panel_k must be a positive multiple of kSyrkNumericK");
  const trace::Span span("syrk");
  const std::size_t m = a.rows;
  const std::size_t n = a.cols;
  for (std::size_t i = 0; i < m; ++i) {
    std::memset(c.row(i), 0, m * sizeof(float));
  }
  // Each chunk owns a contiguous range of the long dimension and
  // accumulates into its own slot of a caller-owned buffer; the caller then
  // folds the slots into C *in chunk order*.  The paper uses an OpenMP lock
  // here, but a completion-order merge stops being reproducible now that
  // nested parallel_for really runs parallel (the scheduler's help-first
  // joins replaced the inline fallback) — ordered slots keep the result a
  // pure function of the chunking, whatever worker ran what and when.
  // Chunks are counted in kSyrkNumericK substeps, NOT in (tunable) packing
  // panels: the chunk partition — and with it every accumulation chain —
  // then depends only on (n, pool size), never on the tuner's panel_k, so
  // tuned and untuned threaded runs stay bit-identical too.  Packing
  // buffers still come from the executing worker's arena; the slots cannot
  // (workspace leases are thread-affine, the merge runs on the caller).
  const std::size_t substeps = (n + kSyrkNumericK - 1) / kSyrkNumericK;
  const std::size_t tasks = std::min<std::size_t>(pool.size() * 2, substeps);
  const std::size_t per_task = (substeps + tasks - 1) / tasks;
  const std::size_t chunks = (substeps + per_task - 1) / per_task;
  AlignedBuffer<float> partials(chunks * m * m);
  std::memset(partials.data(), 0, chunks * m * m * sizeof(float));
  threading::parallel_for(
      pool, 0, substeps, per_task,
      [&](std::size_t s0, std::size_t s1) {
        auto& workspace = core::Workspace::local();
        auto a_local = workspace.acquire(m * geo.panel_k);
        auto at_local = workspace.acquire(geo.panel_k * m);
        float* c_chunk = partials.data() + (s0 / per_task) * m * m;
        const std::size_t k_end = std::min(n, s1 * kSyrkNumericK);
        for (std::size_t k0 = s0 * kSyrkNumericK; k0 < k_end;
             k0 += geo.panel_k) {
          const std::size_t k1 = std::min(k_end, k0 + geo.panel_k);
          panel_contribution(a, k0, k1, a_local.data(), at_local.data(),
                             c_chunk, m, geo.micro_rows);
        }
      });
  for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
    const float* chunk_c = partials.data() + chunk * m * m;
    for (std::size_t i = 0; i < m; ++i) {
      float* FCMA_RESTRICT dst = c.row(i);
      const float* FCMA_RESTRICT src = chunk_c + i * m;
      for (std::size_t j = 0; j <= i; ++j) dst[j] += src[j];
    }
  }
  mirror_upper(c);
}

void syrk(ConstMatrixView a, MatrixView c) {
  syrk_with(a, c, tune::syrk_plan(a.rows, a.cols));
}

void syrk(ConstMatrixView a, MatrixView c, threading::ThreadPool& pool) {
  syrk_with(a, c, tune::syrk_plan(a.rows, a.cols), pool);
}

void syrk_instrumented(ConstMatrixView a, MatrixView c,
                       memsim::Instrument& ins, unsigned model_lanes) {
  FCMA_CHECK(c.rows == a.rows && c.cols == a.rows, "syrk: bad C shape");
  const std::size_t m = a.rows;
  const std::size_t n = a.cols;
  for (std::size_t i = 0; i < m; ++i) {
    std::memset(c.row(i), 0, m * sizeof(float));
  }
  AlignedBuffer<float> a_local(m * kSyrkPanelK);
  AlignedBuffer<float> at_local(kSyrkPanelK * m);
  for (std::size_t k0 = 0; k0 < n; k0 += kSyrkPanelK) {
    const std::size_t k1 = std::min(n, k0 + kSyrkPanelK);
    const std::size_t kb = k1 - k0;
    // Packing: vector copy of each row slice, then a blocked register
    // transpose (16x16 vector loads/stores, as the generated KNC kernels
    // do) into A^T_local.
    for (std::size_t i = 0; i < m; ++i) {
      std::memcpy(a_local.data() + i * kb, a.row(i) + k0, kb * sizeof(float));
      for (std::size_t k = 0; k < kb; k += model_lanes) {
        const auto lanes = static_cast<unsigned>(
            std::min<std::size_t>(model_lanes, kb - k));
        ins.load(a.row(i) + k0 + k, lanes);
        ins.store(a_local.data() + i * kb + k, lanes);
      }
    }
    for (std::size_t k = 0; k < kb; ++k) {
      for (std::size_t i = 0; i < m; ++i) {
        at_local[k * m + i] = a_local[i * kb + k];
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t k = 0; k < kb; k += model_lanes) {
        ins.load(&a_local[i * kb + k],
                 static_cast<unsigned>(
                     std::min<std::size_t>(model_lanes, kb - k)));
      }
    }
    for (std::size_t k = 0; k < kb; ++k) {
      for (std::size_t i = 0; i < m; i += model_lanes) {
        ins.store(&at_local[k * m + i],
                  static_cast<unsigned>(
                      std::min<std::size_t>(model_lanes, m - i)));
      }
    }
    // Micro-kernel sweep over the lower-triangle tiles.
    for (std::size_t i0 = 0; i0 < m; i0 += kSyrkMicroRows) {
      const std::size_t rows = std::min(kSyrkMicroRows, m - i0);
      for (std::size_t j0 = 0; j0 <= i0 + rows - 1; j0 += model_lanes) {
        const auto cols = static_cast<unsigned>(
            std::min<std::size_t>(model_lanes, m - j0));
        for (std::size_t k = 0; k < kb; ++k) {
          ins.load(&at_local[k * m + j0], cols);  // one panel vector load
          for (std::size_t r = 0; r < rows; ++r) {
            ins.load_broadcast(&a_local[(i0 + r) * kb + k], model_lanes);
            ins.arith(cols, 1, 2ull * cols);
          }
        }
        // Scalar recomputation + accumulate into C.
        for (std::size_t r = 0; r < rows; ++r) {
          float* crow = c.row(i0 + r) + j0;
          for (unsigned wv = 0; wv < cols; ++wv) {
            float acc = 0.0f;
            for (std::size_t k = 0; k < kb; ++k) {
              acc += a_local[(i0 + r) * kb + k] * at_local[k * m + j0 + wv];
            }
            crow[wv] += acc;
          }
          ins.load(crow, cols);
          ins.store(crow, cols);
          ins.arith(cols, 1, 0);  // C-tile accumulate add
        }
      }
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) c(i, j) = c(j, i);
  }
}

}  // namespace fcma::linalg::opt
