#include <algorithm>

#include "common/trace.hpp"
#include "linalg/baseline.hpp"

namespace fcma::linalg::baseline {

namespace {

// Generic row tiling: each (i, j) tile performs full-length dots over N.
// For FCMA's N ~ 35k the row pair alone is ~280KB, so the tile working set
// never fits the Phi's 128KB per-thread L2 share — the L2 thrashing the
// paper measured.
constexpr std::size_t kTile = 32;

void syrk_tile(ConstMatrixView a, MatrixView c, std::size_t i0,
               std::size_t i1) {
  const std::size_t n = a.cols;
  for (std::size_t j0 = 0; j0 <= i1 - 1; j0 += kTile) {
    const std::size_t j1 = std::min(i1, j0 + kTile);
    for (std::size_t i = i0; i < i1; ++i) {
      const float* FCMA_RESTRICT ai = a.row(i);
      for (std::size_t j = j0; j < std::min(j1, i + 1); ++j) {
        const float* FCMA_RESTRICT aj = a.row(j);
        float acc = 0.0f;
        for (std::size_t k = 0; k < n; ++k) acc += ai[k] * aj[k];
        c(i, j) = acc;
        c(j, i) = acc;
      }
    }
  }
}

}  // namespace

void syrk(ConstMatrixView a, MatrixView c) {
  FCMA_CHECK(c.rows == a.rows && c.cols == a.rows, "syrk: bad C shape");
  const trace::Span span("baseline_syrk");
  for (std::size_t i0 = 0; i0 < a.rows; i0 += kTile) {
    const std::size_t i1 = std::min(a.rows, i0 + kTile);
    syrk_tile(a, c, i0, i1);
  }
}

void syrk(ConstMatrixView a, MatrixView c, threading::ThreadPool& pool) {
  FCMA_CHECK(c.rows == a.rows && c.cols == a.rows, "syrk: bad C shape");
  const trace::Span span("baseline_syrk");
  threading::parallel_for(pool, 0, a.rows, kTile,
                          [&](std::size_t i0, std::size_t i1) {
                            syrk_tile(a, c, i0, i1);
                          });
}

void syrk_instrumented(ConstMatrixView a, MatrixView c,
                       memsim::Instrument& ins, unsigned model_lanes) {
  FCMA_CHECK(c.rows == a.rows && c.cols == a.rows, "syrk: bad C shape");
  const std::size_t n = a.cols;
  for (std::size_t i0 = 0; i0 < a.rows; i0 += kTile) {
    const std::size_t i1 = std::min(a.rows, i0 + kTile);
    for (std::size_t j0 = 0; j0 <= i1 - 1; j0 += kTile) {
      const std::size_t j1 = std::min(i1, j0 + kTile);
      for (std::size_t i = i0; i < i1; ++i) {
        const float* ai = a.row(i);
        for (std::size_t j = j0; j < std::min(j1, i + 1); ++j) {
          const float* aj = a.row(j);
          float acc = 0.0f;
          // Vectorized dot over the long dimension: good lane occupancy but
          // streams 2N floats per output element through the cache.
          for (std::size_t k = 0; k < n; k += model_lanes) {
            const auto lanes = static_cast<unsigned>(
                std::min<std::size_t>(model_lanes, n - k));
            ins.load(ai + k, lanes);
            ins.load(aj + k, lanes);
            ins.arith(lanes, 1, 2ull * lanes);
            for (std::size_t t = k; t < k + lanes; ++t) acc += ai[t] * aj[t];
          }
          for (unsigned w = model_lanes / 2; w >= 1; w /= 2) {
            ins.arith(w, 2);
            if (w == 1) break;
          }
          c(i, j) = acc;
          c(j, i) = acc;
          ins.store(&c(i, j), 1);
          ins.store(&c(j, i), 1);
        }
      }
    }
  }
}

}  // namespace fcma::linalg::baseline
