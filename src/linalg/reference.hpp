// Trusted scalar reference kernels.
//
// These are the oracles every optimized and baseline kernel is tested
// against.  They are written for clarity, not speed.
#pragma once

#include "linalg/matrix.hpp"

namespace fcma::linalg::reference {

/// C[MxN] = A[MxK] * B[NxK]^T  (i.e. C_ij = sum_k A_ik * B_jk).
///
/// This is the shape of FCMA's correlation computation: A holds the
/// normalized activity of the assigned voxels, B the whole brain's, both
/// row-per-voxel, so B is used transposed.  `C.ld` may exceed N, which is
/// how the pipeline interleaves per-epoch results (paper Fig 4).
void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c);

/// C[MxM] = A[MxN] * A^T, full matrix written (both triangles).
///
/// This is the shape of FCMA's SVM kernel-matrix precomputation: A holds one
/// voxel's M normalized correlation vectors of length N (paper Fig 7).
void syrk(ConstMatrixView a, MatrixView c);

/// Maximum absolute elementwise difference between equal-shaped matrices.
[[nodiscard]] float max_abs_diff(ConstMatrixView x, ConstMatrixView y);

}  // namespace fcma::linalg::reference
