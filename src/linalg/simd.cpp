#include "linalg/simd.hpp"

#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "common/platform.hpp"
#include "linalg/opt.hpp"

namespace fcma::linalg::simd {

namespace {

// One source, three widths.  A GCC vector of W floats compiles on every
// target: when W exceeds the native register width the compiler splits the
// operation into narrower ones, so the 16-lane table is merely slow — never
// illegal — on an AVX2 or SSE host.  The `aligned(4)` relaxation makes
// every load/store unaligned-safe (panel offsets are not always 64-byte
// multiples).
template <int W>
struct VecOf {
  typedef float type
      __attribute__((vector_size(W * sizeof(float)), aligned(4)));
};

template <int W>
FCMA_FORCE_INLINE typename VecOf<W>::type vload(const float* p) {
  return *reinterpret_cast<const typename VecOf<W>::type*>(p);
}

template <int W>
FCMA_FORCE_INLINE void vstore(float* p, typename VecOf<W>::type v) {
  *reinterpret_cast<typename VecOf<W>::type*>(p) = v;
}

// Bit-identity across lane widths.  Every variant accumulates each output
// element over ascending k, but whether an expression is FMA-contracted can
// differ between a templated vector loop and a scalar remainder loop — and
// that one ULP would make FCMA_FORCE_ISA change answers.  So the ragged
// tails below are NON-template helpers, compiled exactly once and shared by
// all three tables, and they run the same 4-lane vector expression as the
// main loops (final <4 columns go through a zero-padded 4-lane step rather
// than scalar code).  The element partition "wide vectors for the bulk,
// this shared tail for the rest" is then identical in every variant.

using V4 = VecOf<4>::type;

// ---------------------------------------------------------------------------
// gemm row-panel: the broadcast-FMA stream of the correlation gemm.
// Register block: 4 vectors of W accumulators per step, one broadcast of A
// per K element amortized over all 4 (paper §4.2 idea #1/#3).
// ---------------------------------------------------------------------------

// Columns [j0, width): 4-lane blocks, then one padded 4-lane step.
void gemm_row_tail(const float* FCMA_RESTRICT a, std::size_t k,
                   const float* FCMA_RESTRICT bt, std::size_t width,
                   std::size_t j0, float* FCMA_RESTRICT c) {
  std::size_t j = j0;
  for (; j + 4 <= width; j += 4) {
    V4 acc = {};
    for (std::size_t kk = 0; kk < k; ++kk) {
      acc += a[kk] * vload<4>(bt + kk * width + j);
    }
    vstore<4>(c + j, acc);
  }
  if (j < width) {
    const std::size_t rem = width - j;
    V4 acc = {};
    alignas(16) float tmp[4] = {};
    for (std::size_t kk = 0; kk < k; ++kk) {
      for (std::size_t l = 0; l < rem; ++l) tmp[l] = bt[kk * width + j + l];
      acc += a[kk] * vload<4>(tmp);
    }
    for (std::size_t l = 0; l < rem; ++l) c[j + l] = acc[l];
  }
}

// U = column vectors advanced per broadcast of an A element (the autotuner
// picks 2 or 4).  Each output element's dot product is computed whole in
// one accumulator whatever U is, so the unroll variants are bit-identical —
// U only changes register-block shape and load scheduling.
template <int W, int U>
void gemm_row_panel_t(const float* FCMA_RESTRICT a, std::size_t k,
                      const float* FCMA_RESTRICT bt, std::size_t width,
                      float* FCMA_RESTRICT c) {
  using V = typename VecOf<W>::type;
  constexpr std::size_t kStep = U * W;
  std::size_t j = 0;
  for (; j + kStep <= width; j += kStep) {
    V acc[U] = {};
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = a[kk];
      const float* FCMA_RESTRICT btk = bt + kk * width + j;
      for (int u = 0; u < U; ++u) {
        acc[u] += av * vload<W>(btk + u * W);
      }
    }
    for (int u = 0; u < U; ++u) {
      vstore<W>(c + j + u * W, acc[u]);
    }
  }
  for (; j + W <= width; j += W) {
    V acc = {};
    for (std::size_t kk = 0; kk < k; ++kk) {
      acc += a[kk] * vload<W>(bt + kk * width + j);
    }
    vstore<W>(c + j, acc);
  }
  gemm_row_tail(a, k, bt, width, j, c);
}

// ---------------------------------------------------------------------------
// syrk packed-panel sweep (paper Fig 7): ROWS x W-col micro-tiles over the
// lower triangle.  The register accumulators flush into C on a FIXED cadence
// of opt::kSyrkNumericK elements — never the (tunable) packing depth kb —
// so every candidate panel depth performs the identical sequence of
// floating-point adds per element.  The full-tile kernel fixes that substep
// at compile time (a runtime bound defeats the strided a_local loads'
// unrolling); ragged substeps fall to the shared edge handler.
// ---------------------------------------------------------------------------
constexpr std::size_t kSyrkMaxRows = opt::kSyrkMicroRows;  // edge acc bound

template <int W, std::size_t ROWS>
void syrk_tile_full(const float* FCMA_RESTRICT a_tile, std::size_t lda,
                    const float* FCMA_RESTRICT at_tile, std::size_t ldat,
                    float* FCMA_RESTRICT c_tile, std::size_t ldc) {
  using V = typename VecOf<W>::type;
  V acc[ROWS] = {};
  for (std::size_t k = 0; k < opt::kSyrkNumericK; ++k) {
    const V at = vload<W>(at_tile + k * ldat);
    for (std::size_t r = 0; r < ROWS; ++r) {
      acc[r] += a_tile[r * lda + k] * at;
    }
  }
  for (std::size_t r = 0; r < ROWS; ++r) {
    float* FCMA_RESTRICT crow = c_tile + r * ldc;
    vstore<W>(crow, vload<W>(crow) + acc[r]);
  }
}

// Ragged edges of the triangle (short rows/columns or a short trailing
// substep).  4-lane blocks with a zero-padded final step, so an element
// that lands in a full tile under one lane width or micro-tile height and
// here under another still sees the exact same multiply-add chain.
void syrk_tile_edge(const float* FCMA_RESTRICT a_tile, std::size_t lda,
                    const float* FCMA_RESTRICT at_tile, std::size_t ldat,
                    std::size_t kb, std::size_t rows, std::size_t cols,
                    float* FCMA_RESTRICT c_tile, std::size_t ldc) {
  for (std::size_t w0 = 0; w0 < cols; w0 += 4) {
    const std::size_t lanes = std::min<std::size_t>(4, cols - w0);
    V4 acc[kSyrkMaxRows] = {};
    if (lanes == 4) {
      for (std::size_t k = 0; k < kb; ++k) {
        const V4 at = vload<4>(at_tile + k * ldat + w0);
        for (std::size_t r = 0; r < rows; ++r) {
          acc[r] += a_tile[r * lda + k] * at;
        }
      }
    } else {
      alignas(16) float tmp[4] = {};
      for (std::size_t k = 0; k < kb; ++k) {
        for (std::size_t l = 0; l < lanes; ++l) {
          tmp[l] = at_tile[k * ldat + w0 + l];
        }
        const V4 at = vload<4>(tmp);
        for (std::size_t r = 0; r < rows; ++r) {
          acc[r] += a_tile[r * lda + k] * at;
        }
      }
    }
    for (std::size_t r = 0; r < rows; ++r) {
      float* crow = c_tile + r * ldc + w0;
      for (std::size_t l = 0; l < lanes; ++l) crow[l] += acc[r][l];
    }
  }
}

template <int W, std::size_t ROWS>
void syrk_panel_t(const float* FCMA_RESTRICT a_local,
                  const float* FCMA_RESTRICT at_local, std::size_t m,
                  std::size_t kb, float* FCMA_RESTRICT c, std::size_t ldc) {
  static_assert(W <= 16, "edge accumulator sized for <= 16 lanes");
  static_assert(ROWS <= kSyrkMaxRows, "edge accumulator sized for 9 rows");
  for (std::size_t k0 = 0; k0 < kb; k0 += opt::kSyrkNumericK) {
    const std::size_t kbs = std::min(opt::kSyrkNumericK, kb - k0);
    for (std::size_t i0 = 0; i0 < m; i0 += ROWS) {
      const std::size_t rows = std::min(ROWS, m - i0);
      // Only tiles intersecting the lower triangle; mirror_upper finishes C.
      for (std::size_t j0 = 0; j0 <= i0 + rows - 1;
           j0 += static_cast<std::size_t>(W)) {
        const std::size_t cols = std::min<std::size_t>(W, m - j0);
        const float* a_tile = a_local + i0 * kb + k0;
        const float* at_tile = at_local + k0 * m + j0;
        float* c_tile = c + i0 * ldc + j0;
        if (rows == ROWS && cols == static_cast<std::size_t>(W) &&
            kbs == opt::kSyrkNumericK) {
          syrk_tile_full<W, ROWS>(a_tile, kb, at_tile, m, c_tile, ldc);
        } else {
          syrk_tile_edge(a_tile, kb, at_tile, m, kbs, rows, cols, c_tile,
                         ldc);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Normalization inner loops (paper §4.3 / Fig 6).  Column-parallel, so lane
// width never reorders a column's accumulation: all variants bit-match.
// ---------------------------------------------------------------------------
// Columns [j0, width) for the moments pass, shared by all lane widths.
void accumulate_moments_tail(const float* FCMA_RESTRICT row,
                             float* FCMA_RESTRICT sum,
                             float* FCMA_RESTRICT sumsq, std::size_t width,
                             std::size_t j0) {
  std::size_t j = j0;
  for (; j + 4 <= width; j += 4) {
    const V4 z = vload<4>(row + j);
    vstore<4>(sum + j, vload<4>(sum + j) + z);
    vstore<4>(sumsq + j, vload<4>(sumsq + j) + z * z);
  }
  if (j < width) {
    const std::size_t rem = width - j;
    alignas(16) float zt[4] = {};
    alignas(16) float st[4] = {};
    alignas(16) float qt[4] = {};
    for (std::size_t l = 0; l < rem; ++l) {
      zt[l] = row[j + l];
      st[l] = sum[j + l];
      qt[l] = sumsq[j + l];
    }
    const V4 z = vload<4>(zt);
    const V4 s = vload<4>(st) + z;
    const V4 q = vload<4>(qt) + z * z;
    for (std::size_t l = 0; l < rem; ++l) {
      sum[j + l] = s[l];
      sumsq[j + l] = q[l];
    }
  }
}

template <int W>
void accumulate_moments_t(const float* FCMA_RESTRICT row,
                          float* FCMA_RESTRICT sum,
                          float* FCMA_RESTRICT sumsq, std::size_t width) {
  using V = typename VecOf<W>::type;
  std::size_t j = 0;
  for (; j + W <= width; j += W) {
    const V z = vload<W>(row + j);
    vstore<W>(sum + j, vload<W>(sum + j) + z);
    vstore<W>(sumsq + j, vload<W>(sumsq + j) + z * z);
  }
  accumulate_moments_tail(row, sum, sumsq, width, j);
}

// Columns [j0, width) for the z-score pass, shared by all lane widths.
void zscore_finish_tail(float* FCMA_RESTRICT row,
                        const float* FCMA_RESTRICT mean,
                        const float* FCMA_RESTRICT inv_sd, std::size_t width,
                        std::size_t j0) {
  std::size_t j = j0;
  for (; j + 4 <= width; j += 4) {
    vstore<4>(row + j,
              (vload<4>(row + j) - vload<4>(mean + j)) * vload<4>(inv_sd + j));
  }
  if (j < width) {
    const std::size_t rem = width - j;
    alignas(16) float rt[4] = {};
    alignas(16) float mt[4] = {};
    alignas(16) float it[4] = {};
    for (std::size_t l = 0; l < rem; ++l) {
      rt[l] = row[j + l];
      mt[l] = mean[j + l];
      it[l] = inv_sd[j + l];
    }
    const V4 out = (vload<4>(rt) - vload<4>(mt)) * vload<4>(it);
    for (std::size_t l = 0; l < rem; ++l) row[j + l] = out[l];
  }
}

template <int W>
void zscore_finish_t(float* FCMA_RESTRICT row, const float* FCMA_RESTRICT mean,
                     const float* FCMA_RESTRICT inv_sd, std::size_t width) {
  std::size_t j = 0;
  for (; j + W <= width; j += W) {
    vstore<W>(row + j,
              (vload<W>(row + j) - vload<W>(mean + j)) * vload<W>(inv_sd + j));
  }
  zscore_finish_tail(row, mean, inv_sd, width, j);
}

template <int W>
constexpr KernelTable make_table() {
  return KernelTable{&gemm_row_panel_t<W, 4>,
                     &syrk_panel_t<W, opt::kSyrkMicroRows>,
                     &accumulate_moments_t<W>,
                     &zscore_finish_t<W>,
                     &gemm_row_panel_t<W, 2>,
                     &syrk_panel_t<W, 6>};
}

// kScalar = 4-lane portable vectors: GCC lowers them to SSE where present
// and to plain scalar code elsewhere, so this table has no ISA requirement
// at all.
constexpr KernelTable kTables[3] = {
    make_table<4>(),   // Isa::kScalar
    make_table<8>(),   // Isa::kAvx2
    make_table<16>(),  // Isa::kAvx512
};

Isa resolve_active() {
  const char* forced = std::getenv("FCMA_FORCE_ISA");
  if (forced != nullptr && forced[0] != '\0') {
    Isa isa;
    FCMA_CHECK(parse_isa(forced, &isa),
               "FCMA_FORCE_ISA must be scalar, avx2, or avx512 (got \"" +
                   std::string(forced) + "\")");
    return isa;
  }
  return detect_isa();
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "unknown";
}

bool parse_isa(std::string_view text, Isa* out) {
  if (text == "scalar") {
    *out = Isa::kScalar;
  } else if (text == "avx2") {
    *out = Isa::kAvx2;
  } else if (text == "avx512") {
    *out = Isa::kAvx512;
  } else {
    return false;
  }
  return true;
}

Isa detect_isa() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx512f")) return Isa::kAvx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Isa::kAvx2;
  }
#endif
  return Isa::kScalar;
}

Isa active_isa() {
  static const Isa isa = resolve_active();
  return isa;
}

const KernelTable& kernels(Isa isa) {
  return kTables[static_cast<int>(isa)];
}

const KernelTable& kernels() { return kernels(active_isa()); }

}  // namespace fcma::linalg::simd
