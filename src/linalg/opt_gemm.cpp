#include <algorithm>
#include <vector>

#include "common/aligned.hpp"
#include "common/trace.hpp"
#include "common/workspace.hpp"
#include "linalg/opt.hpp"
#include "linalg/simd.hpp"

namespace fcma::linalg::opt {

namespace {

// SIMD columns advanced together per broadcast of an A element (the
// instrumented model's register-block width).  The production inner loop
// lives in linalg/simd.cpp, selected per ISA at runtime.
constexpr std::size_t kMicroCols = 4;

}  // namespace

void pack_bt_panel(ConstMatrixView b, std::size_t j0, std::size_t j1,
                   float* FCMA_RESTRICT bt) {
  const std::size_t width = j1 - j0;
  for (std::size_t j = j0; j < j1; ++j) {
    const float* FCMA_RESTRICT bj = b.row(j);
    for (std::size_t k = 0; k < b.cols; ++k) {
      bt[k * width + (j - j0)] = bj[k];
    }
  }
}

void gemm_row_panel(const float* FCMA_RESTRICT a, std::size_t k,
                    const float* FCMA_RESTRICT bt, std::size_t width,
                    float* FCMA_RESTRICT c) {
  simd::kernels().gemm_row_panel(a, k, bt, width, c);
}

void gemm_row_panel(const float* a, std::size_t k, const float* bt,
                    std::size_t width, float* c,
                    const tune::GemmGeometry& geo) {
  const auto& kernels = simd::kernels();
  const auto row_fn =
      geo.unroll == 2 ? kernels.gemm_row_panel_u2 : kernels.gemm_row_panel;
  row_fn(a, k, bt, width, c);
}

namespace {

void gemm_panels(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                 std::size_t panel0, std::size_t panel1, float* bt,
                 const tune::GemmGeometry& geo) {
  const auto& kernels = simd::kernels();
  const auto row_fn =
      geo.unroll == 2 ? kernels.gemm_row_panel_u2 : kernels.gemm_row_panel;
  for (std::size_t j0 = panel0; j0 < panel1; j0 += geo.panel_cols) {
    const std::size_t j1 = std::min(panel1, j0 + geo.panel_cols);
    const std::size_t width = j1 - j0;
    pack_bt_panel(b, j0, j1, bt);
    for (std::size_t i = 0; i < a.rows; ++i) {
      row_fn(a.row(i), a.cols, bt, width, c.row(i) + j0);
    }
  }
}

}  // namespace

void gemm_nt_with(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                  const tune::GemmGeometry& geo) {
  FCMA_CHECK(a.cols == b.cols, "gemm_nt: inner dimensions differ");
  FCMA_CHECK(c.rows == a.rows && c.cols == b.rows, "gemm_nt: bad C shape");
  const trace::Span span("gemm_nt");
  auto bt = core::Workspace::local().acquire(a.cols * geo.panel_cols);
  gemm_panels(a, b, c, 0, b.rows, bt.data(), geo);
}

void gemm_nt_with(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                  const tune::GemmGeometry& geo, threading::ThreadPool& pool) {
  FCMA_CHECK(a.cols == b.cols, "gemm_nt: inner dimensions differ");
  FCMA_CHECK(c.rows == a.rows && c.cols == b.rows, "gemm_nt: bad C shape");
  const trace::Span span("gemm_nt");
  threading::parallel_for(
      pool, 0, b.rows, geo.panel_cols, [&](std::size_t j0, std::size_t j1) {
        // Each chunk runs on one worker; the packed panel comes from that
        // worker's arena and is reused by every chunk it executes.
        auto bt = core::Workspace::local().acquire(a.cols * geo.panel_cols);
        gemm_panels(a, b, c, j0, j1, bt.data(), geo);
      });
}

void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  gemm_nt_with(a, b, c, tune::gemm_plan(a.rows, b.rows, a.cols));
}

void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c,
             threading::ThreadPool& pool) {
  gemm_nt_with(a, b, c, tune::gemm_plan(a.rows, b.rows, a.cols), pool);
}

void pack_bt_panel_instrumented(ConstMatrixView b, std::size_t j0,
                                std::size_t j1, float* bt,
                                memsim::Instrument& ins,
                                unsigned model_lanes) {
  // Packing is a small transpose; production KNC code runs it as blocked
  // vector loads/stores (16x16 register transposes), so the model charges
  // one vector load per source row slice and one vector store per packed
  // row slice.
  const std::size_t width = j1 - j0;
  const std::size_t k_total = b.cols;
  for (std::size_t j = j0; j < j1; ++j) {
    const float* bj = b.row(j);
    for (std::size_t k = 0; k < k_total; ++k) {
      bt[k * width + (j - j0)] = bj[k];
    }
    ins.load(bj, static_cast<std::uint32_t>(
                     std::min<std::size_t>(model_lanes, k_total)));
  }
  for (std::size_t k = 0; k < k_total; ++k) {
    for (std::size_t j = 0; j < width; j += model_lanes) {
      ins.store(&bt[k * width + j],
                static_cast<std::uint32_t>(
                    std::min<std::size_t>(model_lanes, width - j)));
    }
  }
}

void gemm_row_panel_instrumented(const float* a, std::size_t k,
                                 const float* bt, std::size_t width, float* c,
                                 memsim::Instrument& ins,
                                 unsigned model_lanes) {
  const std::size_t micro_step = model_lanes * kMicroCols;
  for (std::size_t jj = 0; jj < width; jj += micro_step) {
    const std::size_t block = std::min(micro_step, width - jj);
    const auto vecs =
        static_cast<unsigned>((block + model_lanes - 1) / model_lanes);
    for (std::size_t kk = 0; kk < k; ++kk) {
      ins.load_broadcast(a + kk, model_lanes);
      std::size_t remaining = block;
      for (unsigned v = 0; v < vecs; ++v) {
        const auto lanes = static_cast<unsigned>(
            std::min<std::size_t>(model_lanes, remaining));
        ins.load(&bt[kk * width + jj + v * model_lanes], lanes);
        ins.arith(lanes, 1, 2ull * lanes);
        remaining -= lanes;
      }
    }
    for (std::size_t j = jj; j < jj + block; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += a[kk] * bt[kk * width + j];
      c[j] = acc;
    }
    std::size_t remaining = block;
    for (unsigned v = 0; v < vecs; ++v) {
      const auto lanes = static_cast<unsigned>(
          std::min<std::size_t>(model_lanes, remaining));
      ins.store(c + jj + v * model_lanes, lanes);
      remaining -= lanes;
    }
  }
}

void gemm_nt_instrumented(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                          memsim::Instrument& ins, unsigned model_lanes) {
  FCMA_CHECK(a.cols == b.cols, "gemm_nt: inner dimensions differ");
  FCMA_CHECK(c.rows == a.rows && c.cols == b.rows, "gemm_nt: bad C shape");
  const std::size_t k = a.cols;
  AlignedBuffer<float> bt(k * kGemmPanelCols);
  const std::size_t micro_step = model_lanes * kMicroCols;
  for (std::size_t j0 = 0; j0 < b.rows; j0 += kGemmPanelCols) {
    const std::size_t j1 = std::min(b.rows, j0 + kGemmPanelCols);
    const std::size_t width = j1 - j0;
    pack_bt_panel_instrumented(b, j0, j1, bt.data(), ins, model_lanes);
    for (std::size_t i = 0; i < a.rows; ++i) {
      const float* ai = a.row(i);
      float* ci = c.row(i) + j0;
      for (std::size_t jj = 0; jj < width; jj += micro_step) {
        const std::size_t block = std::min(micro_step, width - jj);
        const auto vecs = static_cast<unsigned>(
            (block + model_lanes - 1) / model_lanes);
        for (std::size_t kk = 0; kk < k; ++kk) {
          // One broadcast of A per K element, then `vecs` panel loads and
          // `vecs` FMAs at (mostly) full width.
          ins.load_broadcast(ai + kk, model_lanes);
          std::size_t remaining = block;
          for (unsigned v = 0; v < vecs; ++v) {
            const auto lanes = static_cast<unsigned>(
                std::min<std::size_t>(model_lanes, remaining));
            const float* src = &bt[kk * width + jj + v * model_lanes];
            ins.load(src, lanes);
            ins.arith(lanes, 1, 2ull * lanes);
            remaining -= lanes;
          }
        }
        // Scalar recomputation of the same outputs (the checked result).
        for (std::size_t j = jj; j < jj + block; ++j) {
          float acc = 0.0f;
          for (std::size_t kk = 0; kk < k; ++kk)
            acc += ai[kk] * bt[kk * width + j];
          ci[j] = acc;
        }
        std::size_t remaining = block;
        for (unsigned v = 0; v < vecs; ++v) {
          const auto lanes = static_cast<unsigned>(
              std::min<std::size_t>(model_lanes, remaining));
          ins.store(ci + jj + v * model_lanes, lanes);
          remaining -= lanes;
        }
      }
    }
  }
}

}  // namespace fcma::linalg::opt
