#include "linalg/reference.hpp"

#include <algorithm>
#include <cmath>

namespace fcma::linalg::reference {

void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  FCMA_CHECK(a.cols == b.cols, "gemm_nt: inner dimensions differ");
  FCMA_CHECK(c.rows == a.rows && c.cols == b.rows, "gemm_nt: bad C shape");
  for (std::size_t i = 0; i < a.rows; ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::size_t j = 0; j < b.rows; ++j) {
      const float* bj = b.row(j);
      double acc = 0.0;  // accumulate in double for a tighter oracle
      for (std::size_t k = 0; k < a.cols; ++k) {
        acc += static_cast<double>(ai[k]) * static_cast<double>(bj[k]);
      }
      ci[j] = static_cast<float>(acc);
    }
  }
}

void syrk(ConstMatrixView a, MatrixView c) {
  FCMA_CHECK(c.rows == a.rows && c.cols == a.rows, "syrk: bad C shape");
  for (std::size_t i = 0; i < a.rows; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const float* ai = a.row(i);
      const float* aj = a.row(j);
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols; ++k) {
        acc += static_cast<double>(ai[k]) * static_cast<double>(aj[k]);
      }
      const auto v = static_cast<float>(acc);
      c(i, j) = v;
      c(j, i) = v;
    }
  }
}

float max_abs_diff(ConstMatrixView x, ConstMatrixView y) {
  FCMA_CHECK(x.rows == y.rows && x.cols == y.cols,
             "max_abs_diff: shape mismatch");
  float worst = 0.0f;
  for (std::size_t i = 0; i < x.rows; ++i) {
    for (std::size_t j = 0; j < x.cols; ++j) {
      worst = std::max(worst, std::fabs(x(i, j) - y(i, j)));
    }
  }
  return worst;
}

}  // namespace fcma::linalg::reference
