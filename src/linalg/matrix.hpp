// Dense row-major single-precision matrices and views.
//
// FCMA's data are tall-skinny: a brain is [N voxels x T time points] with
// N ~ 25k-35k and per-epoch T ~ 12.  All kernels take unowned views so the
// same buffers flow through the pipeline without copies; Matrix is the
// aligned owning container.
#pragma once

#include <cstddef>
#include <span>

#include "common/aligned.hpp"
#include "common/error.hpp"

namespace fcma::linalg {

/// Non-owning mutable view of a row-major matrix with leading dimension.
struct MatrixView {
  float* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t ld = 0;  ///< distance between consecutive rows (>= cols)

  [[nodiscard]] float* row(std::size_t i) const { return data + i * ld; }
  float& operator()(std::size_t i, std::size_t j) const {
    return data[i * ld + j];
  }
};

/// Non-owning immutable view.
struct ConstMatrixView {
  const float* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t ld = 0;

  ConstMatrixView() = default;
  ConstMatrixView(const float* d, std::size_t r, std::size_t c, std::size_t l)
      : data(d), rows(r), cols(c), ld(l) {}
  ConstMatrixView(const MatrixView& m)  // NOLINT: intentional implicit
      : data(m.data), rows(m.rows), cols(m.cols), ld(m.ld) {}

  [[nodiscard]] const float* row(std::size_t i) const { return data + i * ld; }
  const float& operator()(std::size_t i, std::size_t j) const {
    return data[i * ld + j];
  }
};

/// Owning, 64-byte-aligned, row-major float matrix.
class Matrix {
 public:
  Matrix() = default;

  /// Allocates rows x cols; contents are uninitialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), ld_(cols), buffer_(rows * cols) {}

  /// Allocates with an explicit leading dimension >= cols (padded rows).
  Matrix(std::size_t rows, std::size_t cols, std::size_t ld)
      : rows_(rows), cols_(cols), ld_(ld), buffer_(rows * ld) {
    FCMA_CHECK(ld >= cols, "leading dimension must cover the row");
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t ld() const { return ld_; }

  [[nodiscard]] float* data() { return buffer_.data(); }
  [[nodiscard]] const float* data() const { return buffer_.data(); }

  [[nodiscard]] float* row(std::size_t i) { return data() + i * ld_; }
  [[nodiscard]] const float* row(std::size_t i) const {
    return data() + i * ld_;
  }

  float& operator()(std::size_t i, std::size_t j) { return row(i)[j]; }
  const float& operator()(std::size_t i, std::size_t j) const {
    return row(i)[j];
  }

  [[nodiscard]] MatrixView view() {
    return MatrixView{data(), rows_, cols_, ld_};
  }
  [[nodiscard]] ConstMatrixView view() const {
    return ConstMatrixView{data(), rows_, cols_, ld_};
  }

  /// Sets every element (including row padding) to `v`.
  void fill(float v) {
    for (std::size_t i = 0; i < buffer_.size(); ++i) buffer_[i] = v;
  }

  [[nodiscard]] std::span<float> flat() { return buffer_.span(); }
  [[nodiscard]] std::span<const float> flat() const { return buffer_.span(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t ld_ = 0;
  AlignedBuffer<float> buffer_;
};

}  // namespace fcma::linalg
