// Shape-adaptive kernel autotuner (ROADMAP item 4).
//
// The optimized gemm/syrk kernels are parameterized by a small geometry —
// packed-panel width and register-block unroll for gemm_nt, panel depth and
// micro-tile height for syrk — and the best choice depends on the call's
// (m, n, k) shape (GEMMbench frames tall-skinny GEMM as exactly this search
// problem).  `Tuner` closes the loop at runtime:
//
//   1. Each gemm_nt/syrk call is classified into a shape class (log2-bucketed
//      dimensions, e.g. "gemm:m6:n13:k4" — shapes within a factor of two
//      share a class).
//   2. On a class's first use the tuner sweeps the candidate grid — gemm
//      panel cols {128, 256, 512, 1024} x row-unroll {2, 4}, syrk panel-k
//      {48, 96, 192} x micro-rows {6, 9} — with short in-situ timed probes
//      on a clamped synthetic shape, and remembers the winner.
//   3. Winners persist per (shape class, ISA, thread count) to an on-disk
//      cache (schema "fcma.tune.v1", written atomically via tmp+rename like
//      cluster/checkpoint) loadable with --tune-cache / FCMA_TUNE_CACHE, so
//      later runs pay zero probes.
//   4. Live runs feed archsim::roofline percent-of-peak back via
//      note_roofline(): an entry measuring well below its own best-known
//      roofline fraction is dropped and re-probed rather than trusted
//      forever (machine changed, cache copied from another host, ...).
//
// Numerics: tuning NEVER changes answers.  Gemm panel width and unroll only
// regroup whole per-element dot products; syrk candidates all share the
// fixed `opt::kSyrkNumericK` accumulate->update substep, so every candidate
// geometry — and therefore tuned, untuned, forced, and cached runs — is
// bit-identical (enforced in test_linalg/test_tune and smoke_test.sh).
//
// Environment: FCMA_TUNE=off disables (fixed default geometry),
// FCMA_TUNE_CACHE=PATH persists, FCMA_TUNE_FORCE="gemm:256[:u2],syrk:48[:r6]"
// pins geometries without probing.  FCMA_TUNE_REAL_SHAPES=1 probes the
// actual call shape instead of the clamped synthetic one — slower first-use
// sweeps, but the winner is measured on exactly the production shape
// (lower clamps still apply so degenerate shapes stay probeable).
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace fcma::linalg::tune {

/// Geometry of one gemm_nt call: packed B^T panel width and how many SIMD
/// column vectors advance per broadcast of an A element.  The defaults are
/// the pre-tuner fixed geometry (opt::kGemmPanelCols, 4-wide unroll).
struct GemmGeometry {
  std::size_t panel_cols = 512;
  int unroll = 4;  // 2 or 4

  bool operator==(const GemmGeometry& o) const {
    return panel_cols == o.panel_cols && unroll == o.unroll;
  }
};

/// Geometry of one syrk call: columns of the long dimension packed per
/// panel and the micro-tile height.  panel_k is always a multiple of
/// opt::kSyrkNumericK so the accumulation chains are geometry-invariant.
struct SyrkGeometry {
  std::size_t panel_k = 96;
  std::size_t micro_rows = 9;  // 6 or 9

  bool operator==(const SyrkGeometry& o) const {
    return panel_k == o.panel_k && micro_rows == o.micro_rows;
  }
};

/// The candidate grids the probe sweep searches (fixed, also the set of
/// geometries a tuning cache entry is allowed to name).
[[nodiscard]] const std::vector<GemmGeometry>& gemm_candidates();
[[nodiscard]] const std::vector<SyrkGeometry>& syrk_candidates();

/// Shape classes: log2-bucketed dimensions, so shapes within a factor of
/// two of each other share one tuning decision.
[[nodiscard]] std::string gemm_class(std::size_t m, std::size_t n,
                                     std::size_t k);
[[nodiscard]] std::string syrk_class(std::size_t m, std::size_t n);

/// One remembered decision (exposed for tests and the --tune bench mode).
struct Entry {
  std::string key;   ///< shape class, e.g. "gemm:m6:n13:k4"
  std::string kind;  ///< "gemm" or "syrk"
  std::string isa;
  unsigned threads = 0;
  GemmGeometry gemm;  ///< valid when kind == "gemm"
  SyrkGeometry syrk;  ///< valid when kind == "syrk"
  double probe_ms = 0.0;      ///< winner's probe time
  double gflops = 0.0;        ///< winner's probe throughput
  double pct_roofline = 0.0;  ///< best live %-of-roofline seen (0 = none yet)
  std::string source;         ///< "probe", "cache", or "forced"
  /// Shape the probe sweep actually timed (0 for cache/forced entries).
  /// Diagnostic only — not persisted to the tuning cache.
  std::size_t probe_m = 0;
  std::size_t probe_n = 0;
  std::size_t probe_k = 0;
};

class Tuner {
 public:
  Tuner() = default;
  Tuner(const Tuner&) = delete;
  Tuner& operator=(const Tuner&) = delete;

  /// The process-wide tuner the production kernels consult.  Initialized
  /// from FCMA_TUNE / FCMA_TUNE_CACHE / FCMA_TUNE_FORCE on first use (a bad
  /// value throws fcma::Error, like FCMA_FORCE_ISA).
  [[nodiscard]] static Tuner& instance();

  /// Tuning on/off.  Off means every call gets the fixed default geometry —
  /// bit-identical to tuned runs, just not shape-adaptive.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const;

  /// Arms persistence: loads `path` if it exists (corrupt or truncated
  /// files throw fcma::Error) and re-saves after every new decision.
  void set_cache_path(const std::string& path);

  /// Pins geometries, bypassing probes and cache: "gemm:256", "gemm:256:u2",
  /// "syrk:48:r6", comma/semicolon-separated.  Values outside the candidate
  /// grid throw.  An empty spec clears the pins.
  void set_force(const std::string& spec);

  /// Probe the real call shape instead of the clamped synthetic one
  /// (FCMA_TUNE_REAL_SHAPES).  Only the upper clamps are lifted; tiny
  /// shapes are still padded up to the probeable floor.
  void set_real_shapes(bool on);
  [[nodiscard]] bool real_shapes() const;

  /// The geometry to use for a gemm_nt of shape (m x k) * (n x k)^T /
  /// a syrk of shape (m x n) * T.  Probes on a class's first use.
  [[nodiscard]] GemmGeometry gemm(std::size_t m, std::size_t n,
                                  std::size_t k);
  [[nodiscard]] SyrkGeometry syrk(std::size_t m, std::size_t n);

  /// Roofline feedback from a live run for the most recently decided class
  /// of `kind` ("gemm"/"syrk").  Records the best observed fraction; when a
  /// later run measures below kRetuneFraction of it, the entry is dropped
  /// so the next call re-probes.
  void note_roofline(const std::string& kind, double pct_roofline);

  /// Counters (also mirrored to trace as tune/probes, tune/cache_hits,
  /// tune/invalidations when tracing is on).
  [[nodiscard]] std::size_t probes() const;
  [[nodiscard]] std::size_t cache_hits() const;
  [[nodiscard]] std::size_t invalidations() const;

  /// Forgets every decision and counter (pins and cache path survive).
  /// Tests use this; the cache file is not touched until the next decision.
  void reset();

  /// Snapshot of the remembered decisions (tests, --tune bench mode).
  [[nodiscard]] std::vector<Entry> entries() const;

  /// A live measurement below this fraction of an entry's recorded
  /// pct_roofline invalidates the entry.
  static constexpr double kRetuneFraction = 0.5;

 private:
  void init_from_env();
  void load_cache_locked(const std::string& path);
  void save_cache_locked() const;
  [[nodiscard]] std::string map_key_locked(const std::string& cls) const;

  mutable std::mutex mutex_;
  bool enabled_ = true;
  bool real_shapes_ = false;
  std::string cache_path_;
  bool force_gemm_set_ = false;
  bool force_syrk_set_ = false;
  GemmGeometry force_gemm_;
  SyrkGeometry force_syrk_;
  std::map<std::string, Entry> entries_;
  std::string last_gemm_key_;
  std::string last_syrk_key_;
  std::size_t probes_ = 0;
  std::size_t cache_hits_ = 0;
  std::size_t invalidations_ = 0;
};

/// Shorthands the hot paths call: Tuner::instance().gemm(...) / .syrk(...).
[[nodiscard]] GemmGeometry gemm_plan(std::size_t m, std::size_t n,
                                     std::size_t k);
[[nodiscard]] SyrkGeometry syrk_plan(std::size_t m, std::size_t n);

}  // namespace fcma::linalg::tune
