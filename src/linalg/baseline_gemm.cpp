#include <algorithm>

#include "common/trace.hpp"
#include "linalg/baseline.hpp"

namespace fcma::linalg::baseline {

namespace {

// Generic square blocking: tiles chosen for a host-class 256KB L2, the way a
// general-purpose library tunes once for "typical" matrices.
constexpr std::size_t kRowBlock = 64;
constexpr std::size_t kColBlock = 256;

// One (i-block, j-block) tile of the dot-product gemm.
void gemm_tile(ConstMatrixView a, ConstMatrixView b, MatrixView c,
               std::size_t i0, std::size_t i1, std::size_t j0,
               std::size_t j1) {
  const std::size_t k = a.cols;
  for (std::size_t i = i0; i < i1; ++i) {
    const float* FCMA_RESTRICT ai = a.row(i);
    float* FCMA_RESTRICT ci = c.row(i);
    for (std::size_t j = j0; j < j1; ++j) {
      const float* FCMA_RESTRICT bj = b.row(j);
      float acc = 0.0f;
      // The compiler vectorizes this reduction over K — the short dimension.
      // For K = 12 that is at most 12 active lanes plus a horizontal sum,
      // which is precisely the inefficiency the paper measured in MKL.
      for (std::size_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
      ci[j] = acc;
    }
  }
}

}  // namespace

void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  FCMA_CHECK(a.cols == b.cols, "gemm_nt: inner dimensions differ");
  FCMA_CHECK(c.rows == a.rows && c.cols == b.rows, "gemm_nt: bad C shape");
  const trace::Span span("baseline_gemm_nt");
  for (std::size_t i0 = 0; i0 < a.rows; i0 += kRowBlock) {
    const std::size_t i1 = std::min(a.rows, i0 + kRowBlock);
    for (std::size_t j0 = 0; j0 < b.rows; j0 += kColBlock) {
      const std::size_t j1 = std::min(b.rows, j0 + kColBlock);
      gemm_tile(a, b, c, i0, i1, j0, j1);
    }
  }
}

void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c,
             threading::ThreadPool& pool) {
  FCMA_CHECK(a.cols == b.cols, "gemm_nt: inner dimensions differ");
  FCMA_CHECK(c.rows == a.rows && c.cols == b.rows, "gemm_nt: bad C shape");
  const trace::Span span("baseline_gemm_nt");
  threading::parallel_for(
      pool, 0, a.rows, kRowBlock,
      [&](std::size_t i0, std::size_t i1) {
        for (std::size_t j0 = 0; j0 < b.rows; j0 += kColBlock) {
          const std::size_t j1 = std::min(b.rows, j0 + kColBlock);
          gemm_tile(a, b, c, i0, i1, j0, j1);
        }
      });
}

void gemm_nt_instrumented(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                          memsim::Instrument& ins, unsigned model_lanes) {
  FCMA_CHECK(a.cols == b.cols, "gemm_nt: inner dimensions differ");
  FCMA_CHECK(c.rows == a.rows && c.cols == b.rows, "gemm_nt: bad C shape");
  const std::size_t k = a.cols;
  for (std::size_t i0 = 0; i0 < a.rows; i0 += kRowBlock) {
    const std::size_t i1 = std::min(a.rows, i0 + kRowBlock);
    for (std::size_t j0 = 0; j0 < b.rows; j0 += kColBlock) {
      const std::size_t j1 = std::min(b.rows, j0 + kColBlock);
      for (std::size_t i = i0; i < i1; ++i) {
        const float* ai = a.row(i);
        float* ci = c.row(i);
        for (std::size_t j = j0; j < j1; ++j) {
          const float* bj = b.row(j);
          float acc = 0.0f;
          // Model: the K-loop is vectorized in model_lanes chunks; each
          // chunk is two loads + one FMA with only the valid lanes active.
          for (std::size_t kk = 0; kk < k; kk += model_lanes) {
            const auto lanes = static_cast<unsigned>(
                std::min<std::size_t>(model_lanes, k - kk));
            ins.load(ai + kk, lanes);
            ins.load(bj + kk, lanes);
            ins.arith(lanes, 1, 2ull * lanes);  // fused multiply-add
            for (std::size_t t = kk; t < kk + lanes; ++t)
              acc += ai[t] * bj[t];
          }
          // Horizontal reduction of the accumulator vector: log2(width)
          // shuffle+add pairs with geometrically shrinking useful lanes.
          for (unsigned w = model_lanes / 2; w >= 1; w /= 2) {
            ins.arith(w, 2);  // shuffle + add, no useful FLOPs counted
            if (w == 1) break;
          }
          ci[j] = acc;
          ins.store(ci + j, 1);
        }
      }
    }
  }
}

}  // namespace fcma::linalg::baseline
