// Optimized tall-skinny matrix kernels (paper §4.2 and §4.4).
//
// These implement the paper's three optimization ideas for the two matrix
// shapes FCMA lives on:
//
//   gemm_nt  — correlation computation: C[V,N] = A[V,K] * B[N,K]^T with
//              V ~ 100s, K ~ 12, N ~ 35k.  B is repacked into transposed
//              panels sized for L1/L2 so that the inner loop runs full-width
//              FMAs down the *long* dimension with one broadcast of A per K
//              element, amortized over several SIMD columns (idea #1 block
//              the tall-skinny operand, idea #3 transpose for vector loads).
//
//   syrk     — SVM kernel precomputation: C[M,M] = A[M,N] * A^T with
//              M ~ 200-550, N ~ 35k.  Following the paper's Fig 7, threads
//              walk the long dimension in panels of 96 columns, copy the
//              panel into a local buffer, transpose it, run a fixed
//              (rows x lanes x 96) register-blocked micro-kernel, and merge
//              their partial C under a lock.
//
// Each kernel has an instrumented twin that recomputes the result in scalar
// code while narrating the production instruction stream to a
// memsim::Instrument (see memsim/instrument.hpp).
#pragma once

#include <functional>

#include "linalg/matrix.hpp"
#include "linalg/tune.hpp"
#include "memsim/instrument.hpp"
#include "threading/thread_pool.hpp"

namespace fcma::linalg::opt {

/// Width (output columns) of one packed B^T panel for gemm_nt when tuning
/// is off.  K=12 rows of 512 floats = 24KB: comfortably L1/L2 resident
/// alongside the C rows.  The autotuner (linalg/tune) searches {128, 256,
/// 512, 1024} per shape class.
inline constexpr std::size_t kGemmPanelCols = 512;

/// Columns of the long dimension consumed per syrk panel when tuning is off
/// (paper: 96 rows of the tall operand per block, an integral multiple of
/// the VPU width).  The autotuner searches {48, 96, 192}.
inline constexpr std::size_t kSyrkPanelK = 96;

/// Micro-tile height (rows of C updated at once) in the syrk micro-kernel
/// (paper: the auto-generated 16x9x96 routine; 16 lanes x 9 rows).
inline constexpr std::size_t kSyrkMicroRows = 9;

/// Fixed numeric substep of the syrk accumulation: the micro-kernel flushes
/// its register accumulators into C every kSyrkNumericK elements of the
/// long dimension, *independent of the packing panel depth*.  Every
/// candidate panel_k is a multiple of this, so changing panel depth moves
/// cache behavior but never a floating-point add — the load-bearing fact
/// behind "tuned vs untuned runs are byte-identical".
inline constexpr std::size_t kSyrkNumericK = 48;

/// C[MxN] = A[MxK] * B[NxK]^T with panel-blocked, transposed-operand inner
/// loops.  `c.ld` may exceed N (interleaved epoch layout, paper Fig 4).
/// Geometry comes from the autotuner (tune::gemm_plan).
void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c);

/// Threaded gemm_nt: column panels are distributed across the pool.
void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c,
             threading::ThreadPool& pool);

/// gemm_nt with an explicit geometry (bypasses the tuner; the tuner's own
/// probes, tests, and benches call these).  Bit-identical to gemm_nt for
/// every candidate geometry.
void gemm_nt_with(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                  const tune::GemmGeometry& geo);
void gemm_nt_with(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                  const tune::GemmGeometry& geo, threading::ThreadPool& pool);

/// C[MxM] = A[MxN] * A^T (both triangles written).  Geometry comes from
/// the autotuner (tune::syrk_plan).
void syrk(ConstMatrixView a, MatrixView c);

/// Threaded syrk: the long dimension is distributed across the pool in
/// kSyrkNumericK-substep chunks; each chunk accumulates a private C and the
/// caller folds the chunks in order (deterministic for a given n and pool
/// size, whatever geometry the tuner picked).
void syrk(ConstMatrixView a, MatrixView c, threading::ThreadPool& pool);

/// syrk with an explicit geometry (bypasses the tuner).  Bit-identical to
/// syrk for every candidate geometry.
void syrk_with(ConstMatrixView a, MatrixView c, const tune::SyrkGeometry& geo);
void syrk_with(ConstMatrixView a, MatrixView c, const tune::SyrkGeometry& geo,
               threading::ThreadPool& pool);

/// Instrumented twins (see baseline.hpp for the model_lanes convention).
void gemm_nt_instrumented(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                          memsim::Instrument& ins, unsigned model_lanes = 16);
void syrk_instrumented(ConstMatrixView a, MatrixView c,
                       memsim::Instrument& ins, unsigned model_lanes = 16);

/// Packs columns [j0, j1) of B (rows of the NT operand) into a transposed
/// panel: bt[k * (j1-j0) + (j-j0)] = B(j, k).  Exposed so the fused
/// correlate-and-normalize pipeline stage can reuse the gemm internals.
void pack_bt_panel(ConstMatrixView b, std::size_t j0, std::size_t j1,
                   float* bt);

/// Computes one output row against a packed panel:
/// c[j] = sum_k a[k] * bt[k*width + j] for j in [0, width).
void gemm_row_panel(const float* a, std::size_t k, const float* bt,
                    std::size_t width, float* c);

/// Same, with the register-block unroll chosen by a tuned geometry (the
/// fused correlate-and-normalize stage passes its plan through here).
void gemm_row_panel(const float* a, std::size_t k, const float* bt,
                    std::size_t width, float* c,
                    const tune::GemmGeometry& geo);

/// Instrumented twins of the panel primitives, for fused pipeline stages.
void pack_bt_panel_instrumented(ConstMatrixView b, std::size_t j0,
                                std::size_t j1, float* bt,
                                memsim::Instrument& ins,
                                unsigned model_lanes = 16);
void gemm_row_panel_instrumented(const float* a, std::size_t k,
                                 const float* bt, std::size_t width, float* c,
                                 memsim::Instrument& ins,
                                 unsigned model_lanes = 16);

}  // namespace fcma::linalg::opt
