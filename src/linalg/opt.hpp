// Optimized tall-skinny matrix kernels (paper §4.2 and §4.4).
//
// These implement the paper's three optimization ideas for the two matrix
// shapes FCMA lives on:
//
//   gemm_nt  — correlation computation: C[V,N] = A[V,K] * B[N,K]^T with
//              V ~ 100s, K ~ 12, N ~ 35k.  B is repacked into transposed
//              panels sized for L1/L2 so that the inner loop runs full-width
//              FMAs down the *long* dimension with one broadcast of A per K
//              element, amortized over several SIMD columns (idea #1 block
//              the tall-skinny operand, idea #3 transpose for vector loads).
//
//   syrk     — SVM kernel precomputation: C[M,M] = A[M,N] * A^T with
//              M ~ 200-550, N ~ 35k.  Following the paper's Fig 7, threads
//              walk the long dimension in panels of 96 columns, copy the
//              panel into a local buffer, transpose it, run a fixed
//              (rows x lanes x 96) register-blocked micro-kernel, and merge
//              their partial C under a lock.
//
// Each kernel has an instrumented twin that recomputes the result in scalar
// code while narrating the production instruction stream to a
// memsim::Instrument (see memsim/instrument.hpp).
#pragma once

#include <functional>

#include "linalg/matrix.hpp"
#include "memsim/instrument.hpp"
#include "threading/thread_pool.hpp"

namespace fcma::linalg::opt {

/// Width (output columns) of one packed B^T panel for gemm_nt.  K=12 rows of
/// 512 floats = 24KB: comfortably L1/L2 resident alongside the C rows.
inline constexpr std::size_t kGemmPanelCols = 512;

/// Columns of the long dimension consumed per syrk panel (paper: 96 rows of
/// the tall operand per block, an integral multiple of the VPU width).
inline constexpr std::size_t kSyrkPanelK = 96;

/// Micro-tile height (rows of C updated at once) in the syrk micro-kernel
/// (paper: the auto-generated 16x9x96 routine; 16 lanes x 9 rows).
inline constexpr std::size_t kSyrkMicroRows = 9;

/// C[MxN] = A[MxK] * B[NxK]^T with panel-blocked, transposed-operand inner
/// loops.  `c.ld` may exceed N (interleaved epoch layout, paper Fig 4).
void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c);

/// Threaded gemm_nt: column panels are distributed across the pool.
void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c,
             threading::ThreadPool& pool);

/// C[MxM] = A[MxN] * A^T (both triangles written).
void syrk(ConstMatrixView a, MatrixView c);

/// Threaded syrk: panels of the long dimension are distributed across the
/// pool; each thread accumulates a private C and merges under a lock, as in
/// the paper's Fig 7 workflow.
void syrk(ConstMatrixView a, MatrixView c, threading::ThreadPool& pool);

/// Instrumented twins (see baseline.hpp for the model_lanes convention).
void gemm_nt_instrumented(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                          memsim::Instrument& ins, unsigned model_lanes = 16);
void syrk_instrumented(ConstMatrixView a, MatrixView c,
                       memsim::Instrument& ins, unsigned model_lanes = 16);

/// Packs columns [j0, j1) of B (rows of the NT operand) into a transposed
/// panel: bt[k * (j1-j0) + (j-j0)] = B(j, k).  Exposed so the fused
/// correlate-and-normalize pipeline stage can reuse the gemm internals.
void pack_bt_panel(ConstMatrixView b, std::size_t j0, std::size_t j1,
                   float* bt);

/// Computes one output row against a packed panel:
/// c[j] = sum_k a[k] * bt[k*width + j] for j in [0, width).
void gemm_row_panel(const float* a, std::size_t k, const float* bt,
                    std::size_t width, float* c);

/// Instrumented twins of the panel primitives, for fused pipeline stages.
void pack_bt_panel_instrumented(ConstMatrixView b, std::size_t j0,
                                std::size_t j1, float* bt,
                                memsim::Instrument& ins,
                                unsigned model_lanes = 16);
void gemm_row_panel_instrumented(const float* a, std::size_t k,
                                 const float* bt, std::size_t width, float* c,
                                 memsim::Instrument& ins,
                                 unsigned model_lanes = 16);

}  // namespace fcma::linalg::opt
