// Runtime-dispatched SIMD micro-kernels (paper §4.2-4.4 hot loops).
//
// The optimized kernels' inner loops exist in three explicit variants —
// AVX-512F (16 float lanes), AVX2+FMA (8 lanes), and a portable 4-lane
// fallback — written once as width-templated GCC vector-extension code.
// Wider-than-native vectors are synthesized from narrower operations by the
// compiler, so *every* variant runs correctly on *any* host: forcing the
// AVX-512 table on an SSE-only machine is slow but valid, which is what
// keeps all three paths testable everywhere.
//
// Selection happens once, at first use:
//   1. FCMA_FORCE_ISA=scalar|avx2|avx512 overrides everything (tests, A/B
//      runs, reproducing a narrower machine's numerics — though note the
//      variants are in fact bit-identical, see below);
//   2. otherwise CPUID picks the widest ISA the CPU executes natively.
//
// Numerics: each output element accumulates its products in the same
// (ascending-k) order in every variant, so the three tables produce
// bit-identical results — dispatch changes speed, never answers.
#pragma once

#include <cstddef>
#include <string_view>

namespace fcma::linalg::simd {

/// Instruction-set variants of the micro-kernel table.
enum class Isa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Human-readable name ("scalar", "avx2", "avx512").
[[nodiscard]] const char* isa_name(Isa isa);

/// Parses an FCMA_FORCE_ISA value (case-sensitive, as documented).
/// Returns true and sets *out on success.
[[nodiscard]] bool parse_isa(std::string_view text, Isa* out);

/// Widest ISA the executing CPU supports natively (CPUID).
[[nodiscard]] Isa detect_isa();

/// The ISA the process resolved at first use: FCMA_FORCE_ISA if set (a bad
/// value throws fcma::Error), else detect_isa().  Cached; later environment
/// changes have no effect.
[[nodiscard]] Isa active_isa();

/// The micro-kernels every optimized hot path calls through.  One table per
/// ISA; all entries of a table are non-null.  The *_u2 / *_r6 entries are
/// register-block variants the autotuner (linalg/tune) selects between;
/// every variant is bit-identical to its sibling (same per-element
/// accumulation chains, shared ragged tails).
struct KernelTable {
  /// gemm row-panel: c[j] = sum_k a[k] * bt[k*width + j] for j in [0,width).
  /// The broadcast-FMA inner loop of the correlation gemm (paper §4.2).
  /// Register block: 4 column vectors per broadcast of an A element.
  void (*gemm_row_panel)(const float* a, std::size_t k, const float* bt,
                         std::size_t width, float* c);

  /// syrk packed-panel sweep: accumulates A_panel * A_panel^T into the
  /// lower-triangle micro-tiles of c (ldc-strided, m x m).  a_local is the
  /// m x kb row-major packed panel, at_local its kb x m transpose
  /// (paper Fig 7).  Micro-tiles are 9 rows tall; C is updated every
  /// opt::kSyrkNumericK elements of kb regardless of the packing depth, so
  /// all panel depths produce identical bits.
  void (*syrk_panel)(const float* a_local, const float* at_local,
                     std::size_t m, std::size_t kb, float* c, std::size_t ldc);

  /// Normalization pass 1 for one (already Fisher-transformed) row of a
  /// column chunk: sum[j] += row[j], sumsq[j] += row[j]*row[j].  The scalar
  /// fisher_z transcendental stays in stats/ (it is elementwise and
  /// identical for every ISA); the moment accumulation is what vectorizes.
  void (*accumulate_moments)(const float* row, float* sum, float* sumsq,
                             std::size_t width);

  /// Normalization pass 2 for one row: row[j] = (row[j]-mean[j])*inv_sd[j].
  void (*zscore_finish)(float* row, const float* mean, const float* inv_sd,
                        std::size_t width);

  /// gemm_row_panel with a 2-vector register block (lighter register
  /// pressure; sometimes wins on short panels).  Bit-identical output.
  void (*gemm_row_panel_u2)(const float* a, std::size_t k, const float* bt,
                            std::size_t width, float* c);

  /// syrk_panel with 6-row micro-tiles.  Bit-identical output.
  void (*syrk_panel_r6)(const float* a_local, const float* at_local,
                        std::size_t m, std::size_t kb, float* c,
                        std::size_t ldc);
};

/// The table for an explicit variant (all variants are safe on all hosts).
[[nodiscard]] const KernelTable& kernels(Isa isa);

/// The table for active_isa().
[[nodiscard]] const KernelTable& kernels();

}  // namespace fcma::linalg::simd
