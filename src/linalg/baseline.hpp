// "Generic library" baseline kernels (the paper's MKL stand-in).
//
// The paper's baseline calls Intel MKL's cblas_sgemm / cblas_ssyrk, which
// are excellent for large, roughly-square operands but — as §3.3.1 shows —
// underperform on FCMA's tall-skinny shapes: they vectorize the short
// reduction dimension (K ~ 12 for the correlation gemm), issue horizontal
// reductions per output element, and their square blocking thrashes small
// per-thread L2 quotas.  These kernels reproduce exactly those generic
// design choices:
//
//   * dot-product formulation: each output element is a vectorized dot over
//     K, followed by a horizontal reduction;
//   * square cache blocking sized for a generous (host-class) L2;
//   * no operand repacking / transposition.
//
// They are *correct* and respectably fast — a fair baseline — just not
// shaped for this workload, which is the paper's point.
#pragma once

#include "linalg/matrix.hpp"
#include "memsim/instrument.hpp"
#include "threading/thread_pool.hpp"

namespace fcma::linalg::baseline {

/// C[MxN] = A[MxK] * B[NxK]^T, generic dot-product blocking.
void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c);

/// Threaded variant: rows of C are split across the pool.
void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c,
             threading::ThreadPool& pool);

/// C[MxM] = A[MxN] * A^T (both triangles written), generic blocking.
void syrk(ConstMatrixView a, MatrixView c);

/// Threaded variant: row tiles of C are split across the pool.
void syrk(ConstMatrixView a, MatrixView c, threading::ThreadPool& pool);

/// Instrumented gemm_nt: computes the same result with scalar code while
/// narrating the generic kernel's instruction stream to `ins`, modeling a
/// `model_lanes`-wide VPU (16 = Xeon Phi, 8 = AVX Xeon).
void gemm_nt_instrumented(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                          memsim::Instrument& ins, unsigned model_lanes = 16);

/// Instrumented syrk; see gemm_nt_instrumented.
void syrk_instrumented(ConstMatrixView a, MatrixView c,
                       memsim::Instrument& ins, unsigned model_lanes = 16);

}  // namespace fcma::linalg::baseline
