#include "linalg/tune.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "linalg/matrix.hpp"
#include "linalg/opt.hpp"
#include "linalg/simd.hpp"

namespace fcma::linalg::tune {

namespace {

constexpr const char* kSchema = "fcma.tune.v1";

// Probe shapes are clamped so a first-use sweep costs single-digit
// milliseconds even when the real call is huge: panel-width effects show up
// at a few thousand columns, and a few dozen rows exercise the register
// blocks.  Probes time the real entry points (opt::gemm_nt_with /
// opt::syrk_with), so what wins the probe is what runs in production.
constexpr std::size_t kGemmProbeMaxRows = 32;
constexpr std::size_t kGemmProbeMaxCols = 4096;
constexpr std::size_t kGemmProbeMaxK = 64;
constexpr std::size_t kSyrkProbeMaxM = 128;
constexpr std::size_t kSyrkProbeMaxN = 2048;
constexpr int kProbeReps = 2;  // timed reps per candidate (after 1 warm-up)

unsigned hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

// log2 bucket: 1 -> 1, 2..3 -> 2, 4..7 -> 3, ... (shapes within a factor
// of two share a bucket, and so a tuning decision).
unsigned bucket(std::size_t v) {
  return static_cast<unsigned>(std::bit_width(v | 1));
}

void append_double(std::string& out, double v) {
  char buf[32];
  // 17 significant digits round-trip any IEEE-754 double through strtod.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

std::string describe(const Entry& e) {
  std::ostringstream os;
  if (e.kind == "gemm") {
    os << "panel_cols=" << e.gemm.panel_cols << " unroll=" << e.gemm.unroll;
  } else {
    os << "panel_k=" << e.syrk.panel_k << " micro_rows=" << e.syrk.micro_rows;
  }
  os << " src=" << e.source;
  char buf[64];
  std::snprintf(buf, sizeof(buf), " gflops=%.1f pct_roof=%.1f", e.gflops,
                e.pct_roofline);
  os << buf;
  return os.str();
}

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.uniform(-1.0f, 1.0f);
  }
  return m;
}

// Best-of-reps wall time of `body` after one warm-up call.
template <typename Fn>
double probe_seconds(Fn&& body) {
  body();
  double best = 0.0;
  for (int rep = 0; rep < kProbeReps; ++rep) {
    const WallTimer timer;
    body();
    const double s = timer.seconds();
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

long long parse_ll(const std::string& text) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  FCMA_CHECK(end != nullptr && *end == '\0' && !text.empty(),
             "tune: expected an integer, got \"" + text + "\"");
  return v;
}

}  // namespace

const std::vector<GemmGeometry>& gemm_candidates() {
  static const std::vector<GemmGeometry> candidates = [] {
    std::vector<GemmGeometry> out;
    for (const std::size_t cols : {128, 256, 512, 1024}) {
      for (const int unroll : {4, 2}) {
        out.push_back(GemmGeometry{cols, unroll});
      }
    }
    return out;
  }();
  return candidates;
}

const std::vector<SyrkGeometry>& syrk_candidates() {
  static const std::vector<SyrkGeometry> candidates = [] {
    std::vector<SyrkGeometry> out;
    for (const std::size_t panel_k : {48, 96, 192}) {
      for (const std::size_t rows : {9, 6}) {
        out.push_back(SyrkGeometry{panel_k, rows});
      }
    }
    return out;
  }();
  return candidates;
}

std::string gemm_class(std::size_t m, std::size_t n, std::size_t k) {
  std::ostringstream os;
  os << "gemm:m" << bucket(m) << ":n" << bucket(n) << ":k" << bucket(k);
  return os.str();
}

std::string syrk_class(std::size_t m, std::size_t n) {
  std::ostringstream os;
  os << "syrk:m" << bucket(m) << ":n" << bucket(n);
  return os.str();
}

Tuner& Tuner::instance() {
  static Tuner* tuner = [] {
    auto* t = new Tuner();
    t->init_from_env();
    return t;
  }();
  return *tuner;
}

void Tuner::init_from_env() {
  const char* mode = std::getenv("FCMA_TUNE");
  if (mode != nullptr && mode[0] != '\0') {
    const std::string_view v(mode);
    if (v == "off" || v == "0") {
      set_enabled(false);
    } else {
      FCMA_CHECK(v == "on" || v == "1",
                 "FCMA_TUNE must be on/off (got \"" + std::string(mode) +
                     "\")");
    }
  }
  const char* force = std::getenv("FCMA_TUNE_FORCE");
  if (force != nullptr && force[0] != '\0') set_force(force);
  const char* cache = std::getenv("FCMA_TUNE_CACHE");
  if (cache != nullptr && cache[0] != '\0') set_cache_path(cache);
  const char* real = std::getenv("FCMA_TUNE_REAL_SHAPES");
  if (real != nullptr && real[0] != '\0') {
    const std::string_view v(real);
    FCMA_CHECK(v == "on" || v == "1" || v == "off" || v == "0",
               "FCMA_TUNE_REAL_SHAPES must be on/off (got \"" +
                   std::string(real) + "\")");
    set_real_shapes(v == "on" || v == "1");
  }
}

void Tuner::set_real_shapes(bool on) {
  const std::lock_guard<std::mutex> lock(mutex_);
  real_shapes_ = on;
}

bool Tuner::real_shapes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return real_shapes_;
}

void Tuner::set_enabled(bool enabled) {
  const std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

bool Tuner::enabled() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void Tuner::set_cache_path(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  cache_path_ = path;
  if (!path.empty() && std::ifstream(path).good()) {
    load_cache_locked(path);
  }
}

void Tuner::set_force(const std::string& spec) {
  const std::lock_guard<std::mutex> lock(mutex_);
  force_gemm_set_ = false;
  force_syrk_set_ = false;
  if (spec.empty()) return;
  std::string item;
  std::vector<std::string> items;
  for (const char ch : spec) {
    if (ch == ',' || ch == ';') {
      if (!item.empty()) items.push_back(item);
      item.clear();
    } else {
      item += ch;
    }
  }
  if (!item.empty()) items.push_back(item);
  for (const std::string& it : items) {
    std::vector<std::string> parts;
    std::string part;
    for (const char ch : it) {
      if (ch == ':') {
        parts.push_back(part);
        part.clear();
      } else {
        part += ch;
      }
    }
    parts.push_back(part);
    FCMA_CHECK(parts.size() >= 2 && parts.size() <= 3,
               "tune: bad force spec item \"" + it +
                   "\" (want gemm:COLS[:uN] or syrk:K[:rN])");
    if (parts[0] == "gemm") {
      GemmGeometry geo;
      geo.panel_cols = static_cast<std::size_t>(parse_ll(parts[1]));
      if (parts.size() == 3) {
        FCMA_CHECK(parts[2].size() >= 2 && parts[2][0] == 'u',
                   "tune: bad gemm unroll \"" + parts[2] + "\" (want uN)");
        geo.unroll = static_cast<int>(parse_ll(parts[2].substr(1)));
      }
      const auto& grid = gemm_candidates();
      FCMA_CHECK(std::find(grid.begin(), grid.end(), geo) != grid.end(),
                 "tune: forced gemm geometry outside the candidate grid: " +
                     it);
      force_gemm_ = geo;
      force_gemm_set_ = true;
    } else if (parts[0] == "syrk") {
      SyrkGeometry geo;
      geo.panel_k = static_cast<std::size_t>(parse_ll(parts[1]));
      if (parts.size() == 3) {
        FCMA_CHECK(parts[2].size() >= 2 && parts[2][0] == 'r',
                   "tune: bad syrk micro_rows \"" + parts[2] +
                       "\" (want rN)");
        geo.micro_rows = static_cast<std::size_t>(parse_ll(parts[2].substr(1)));
      }
      const auto& grid = syrk_candidates();
      FCMA_CHECK(std::find(grid.begin(), grid.end(), geo) != grid.end(),
                 "tune: forced syrk geometry outside the candidate grid: " +
                     it);
      force_syrk_ = geo;
      force_syrk_set_ = true;
    } else {
      FCMA_CHECK(false, "tune: bad force spec kind \"" + parts[0] +
                            "\" (want gemm or syrk)");
    }
  }
}

std::string Tuner::map_key_locked(const std::string& cls) const {
  return cls + "|" + simd::isa_name(simd::active_isa()) + "|" +
         std::to_string(hardware_threads());
}

GemmGeometry Tuner::gemm(std::size_t m, std::size_t n, std::size_t k) {
  const std::lock_guard<std::mutex> lock(mutex_);
  trace::meta_set("tune/enabled", enabled_ ? "1" : "0");
  // Counters are (re-)seeded on every decision so a traced run always
  // carries them, zeros included — even with tuning disabled, so any
  // trace with tune metadata also has the counter set.
  trace::count("tune/probes", 0);
  trace::count("tune/cache_hits", 0);
  if (!enabled_) return GemmGeometry{};
  const std::string cls = gemm_class(m, n, k);
  last_gemm_key_ = map_key_locked(cls);
  if (force_gemm_set_) {
    Entry e;
    e.key = cls;
    e.kind = "gemm";
    e.gemm = force_gemm_;
    e.source = "forced";
    trace::meta_set("tune/" + cls, describe(e));
    return force_gemm_;
  }
  auto it = entries_.find(last_gemm_key_);
  if (it != entries_.end()) {
    ++cache_hits_;
    trace::count("tune/cache_hits");
    trace::meta_set("tune/" + cls, describe(it->second));
    return it->second.gemm;
  }

  // Probe sweep: a clamped synthetic shape by default, or the real call
  // shape (lower clamps only) under FCMA_TUNE_REAL_SHAPES.
  const trace::Span span("tune/probe");
  const std::size_t mp =
      real_shapes_ ? std::max<std::size_t>(m, 4)
                   : std::clamp<std::size_t>(m, 4, kGemmProbeMaxRows);
  const std::size_t np =
      real_shapes_ ? std::max<std::size_t>(n, 128)
                   : std::clamp<std::size_t>(n, 128, kGemmProbeMaxCols);
  const std::size_t kp =
      real_shapes_ ? std::max<std::size_t>(k, 4)
                   : std::clamp<std::size_t>(k, 4, kGemmProbeMaxK);
  const Matrix a = random_matrix(mp, kp, 0x7e57a001);
  const Matrix b = random_matrix(np, kp, 0x7e57a002);
  Matrix c(mp, np);
  Entry best;
  for (const GemmGeometry& geo : gemm_candidates()) {
    const double s = probe_seconds(
        [&] { opt::gemm_nt_with(a.view(), b.view(), c.view(), geo); });
    ++probes_;
    trace::count("tune/probes");
    if (best.source.empty() || s * 1000.0 < best.probe_ms) {
      best.gemm = geo;
      best.probe_ms = s * 1000.0;
      best.gflops = 2.0 * static_cast<double>(mp) * static_cast<double>(np) *
                    static_cast<double>(kp) / (s * 1e9);
      best.source = "probe";
    }
  }
  best.key = cls;
  best.kind = "gemm";
  best.isa = simd::isa_name(simd::active_isa());
  best.threads = hardware_threads();
  best.probe_m = mp;
  best.probe_n = np;
  best.probe_k = kp;
  entries_[last_gemm_key_] = best;
  trace::meta_set("tune/" + cls, describe(best));
  if (!cache_path_.empty()) save_cache_locked();
  return best.gemm;
}

SyrkGeometry Tuner::syrk(std::size_t m, std::size_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  trace::meta_set("tune/enabled", enabled_ ? "1" : "0");
  trace::count("tune/probes", 0);
  trace::count("tune/cache_hits", 0);
  if (!enabled_) return SyrkGeometry{};
  const std::string cls = syrk_class(m, n);
  last_syrk_key_ = map_key_locked(cls);
  if (force_syrk_set_) {
    Entry e;
    e.key = cls;
    e.kind = "syrk";
    e.syrk = force_syrk_;
    e.source = "forced";
    trace::meta_set("tune/" + cls, describe(e));
    return force_syrk_;
  }
  auto it = entries_.find(last_syrk_key_);
  if (it != entries_.end()) {
    ++cache_hits_;
    trace::count("tune/cache_hits");
    trace::meta_set("tune/" + cls, describe(it->second));
    return it->second.syrk;
  }

  const trace::Span span("tune/probe");
  const std::size_t mp =
      real_shapes_ ? std::max<std::size_t>(m, 8)
                   : std::clamp<std::size_t>(m, 8, kSyrkProbeMaxM);
  const std::size_t np =
      real_shapes_ ? std::max<std::size_t>(n, 192)
                   : std::clamp<std::size_t>(n, 192, kSyrkProbeMaxN);
  const Matrix a = random_matrix(mp, np, 0x7e57a003);
  Matrix c(mp, mp);
  Entry best;
  for (const SyrkGeometry& geo : syrk_candidates()) {
    const double s =
        probe_seconds([&] { opt::syrk_with(a.view(), c.view(), geo); });
    ++probes_;
    trace::count("tune/probes");
    if (best.source.empty() || s * 1000.0 < best.probe_ms) {
      best.syrk = geo;
      best.probe_ms = s * 1000.0;
      best.gflops = static_cast<double>(mp) * static_cast<double>(mp) *
                    static_cast<double>(np) / (s * 1e9);
      best.source = "probe";
    }
  }
  best.key = cls;
  best.kind = "syrk";
  best.isa = simd::isa_name(simd::active_isa());
  best.threads = hardware_threads();
  best.probe_m = mp;
  best.probe_n = np;
  entries_[last_syrk_key_] = best;
  trace::meta_set("tune/" + cls, describe(best));
  if (!cache_path_.empty()) save_cache_locked();
  return best.syrk;
}

void Tuner::note_roofline(const std::string& kind, double pct_roofline) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_ || pct_roofline <= 0.0) return;
  const std::string& key = kind == "gemm" ? last_gemm_key_ : last_syrk_key_;
  if (key.empty()) return;
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  if (e.pct_roofline > 0.0 &&
      pct_roofline < kRetuneFraction * e.pct_roofline) {
    // The chosen variant is measuring far below this class's best-known
    // roofline fraction (machine changed, cache copied across hosts, noisy
    // probe): drop it so the next call re-probes instead of trusting it
    // forever.
    entries_.erase(it);
    ++invalidations_;
    trace::count("tune/invalidations");
    if (!cache_path_.empty()) save_cache_locked();
    return;
  }
  if (pct_roofline > e.pct_roofline) {
    e.pct_roofline = pct_roofline;
    if (!cache_path_.empty()) save_cache_locked();
  }
}

std::size_t Tuner::probes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return probes_;
}

std::size_t Tuner::cache_hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_hits_;
}

std::size_t Tuner::invalidations() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return invalidations_;
}

void Tuner::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  last_gemm_key_.clear();
  last_syrk_key_.clear();
  probes_ = 0;
  cache_hits_ = 0;
  invalidations_ = 0;
}

std::vector<Entry> Tuner::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) out.push_back(e);
  return out;
}

void Tuner::load_cache_locked(const std::string& path) {
  const json::Value doc = json::parse_file(path);
  FCMA_CHECK(doc.is_object() && doc.at("schema").as_string() == kSchema,
             "not an fcma.tune.v1 tuning cache: " + path);
  FCMA_CHECK(doc.at("entries").is_array(),
             "tuning cache has no entries array: " + path);
  for (const json::Value& je : doc.at("entries").elements()) {
    Entry e;
    e.key = je.at("key").as_string();
    e.kind = je.at("kind").as_string();
    e.isa = je.at("isa").as_string();
    e.threads = static_cast<unsigned>(je.at("threads").as_number());
    FCMA_CHECK(!e.key.empty() && (e.kind == "gemm" || e.kind == "syrk") &&
                   !e.isa.empty() && e.threads > 0,
               "malformed tuning cache entry in " + path);
    if (e.kind == "gemm") {
      e.gemm.panel_cols =
          static_cast<std::size_t>(je.at("panel_cols").as_number());
      e.gemm.unroll = static_cast<int>(je.at("unroll").as_number());
      const auto& grid = gemm_candidates();
      FCMA_CHECK(std::find(grid.begin(), grid.end(), e.gemm) != grid.end(),
                 "tuning cache entry names a geometry outside the candidate "
                 "grid: " +
                     path);
    } else {
      e.syrk.panel_k =
          static_cast<std::size_t>(je.at("panel_k").as_number());
      e.syrk.micro_rows =
          static_cast<std::size_t>(je.at("micro_rows").as_number());
      const auto& grid = syrk_candidates();
      FCMA_CHECK(std::find(grid.begin(), grid.end(), e.syrk) != grid.end(),
                 "tuning cache entry names a geometry outside the candidate "
                 "grid: " +
                     path);
    }
    e.probe_ms = je.at("probe_ms").as_number();
    e.gflops = je.at("gflops").as_number();
    e.pct_roofline = je.at("pct_roofline").as_number();
    e.source = "cache";
    entries_[e.key + "|" + e.isa + "|" + std::to_string(e.threads)] = e;
  }
}

void Tuner::save_cache_locked() const {
  std::string out;
  out += "{\n  \"schema\": \"";
  out += kSchema;
  out += "\",\n  \"entries\": [";
  bool first = true;
  for (const auto& [key, e] : entries_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"key\": \"" + e.key + "\", \"kind\": \"" + e.kind +
           "\", \"isa\": \"" + e.isa + "\", \"threads\": " +
           std::to_string(e.threads) + ",\n     ";
    if (e.kind == "gemm") {
      out += "\"panel_cols\": " + std::to_string(e.gemm.panel_cols) +
             ", \"unroll\": " + std::to_string(e.gemm.unroll);
    } else {
      out += "\"panel_k\": " + std::to_string(e.syrk.panel_k) +
             ", \"micro_rows\": " + std::to_string(e.syrk.micro_rows);
    }
    out += ", \"probe_ms\": ";
    append_double(out, e.probe_ms);
    out += ", \"gflops\": ";
    append_double(out, e.gflops);
    out += ", \"pct_roofline\": ";
    append_double(out, e.pct_roofline);
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";

  // tmp + rename: readers never observe a torn file (same idiom as
  // cluster/checkpoint).
  const std::string tmp = cache_path_ + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    FCMA_CHECK(f.good(), "cannot open tuning cache for writing: " + tmp);
    f.write(out.data(), static_cast<std::streamsize>(out.size()));
    f.flush();
    FCMA_CHECK(f.good(), "tuning cache write failed: " + tmp);
  }
  FCMA_CHECK(std::rename(tmp.c_str(), cache_path_.c_str()) == 0,
             "tuning cache rename failed: " + cache_path_);
}

GemmGeometry gemm_plan(std::size_t m, std::size_t n, std::size_t k) {
  return Tuner::instance().gemm(m, n, k);
}

SyrkGeometry syrk_plan(std::size_t m, std::size_t n) {
  return Tuner::instance().syrk(m, n);
}

}  // namespace fcma::linalg::tune
