#include "memsim/cache.hpp"

#include <bit>

#include "common/error.hpp"

namespace fcma::memsim {

CacheConfig phi_l1() { return {.size_bytes = 32 * 1024, .associativity = 8}; }
CacheConfig phi_l2() { return {.size_bytes = 512 * 1024, .associativity = 8}; }
CacheConfig xeon_l1() { return {.size_bytes = 32 * 1024, .associativity = 8}; }
CacheConfig xeon_llc() {
  return {.size_bytes = 2560 * 1024, .associativity = 20};
}

CacheLevel::CacheLevel(const CacheConfig& config) : config_(config) {
  FCMA_CHECK(config.size_bytes % (config.associativity * config.line_bytes) ==
                 0,
             "cache size must be a multiple of way size");
  const std::size_t sets = config.sets();
  FCMA_CHECK(std::has_single_bit(sets), "set count must be a power of two");
  set_mask_ = sets - 1;
  ways_.resize(sets * config.associativity);
}

bool CacheLevel::access(std::uint64_t line_addr) {
  ++tick_;
  const std::size_t set = static_cast<std::size_t>(line_addr) & set_mask_;
  Way* base = &ways_[set * config_.associativity];
  Way* victim = base;
  for (std::size_t w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == line_addr) {
      way.last_use = tick_;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an empty way over LRU eviction
    } else if (victim->valid && way.last_use < victim->last_use) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = line_addr;
  victim->last_use = tick_;
  return false;
}

void CacheLevel::flush() {
  for (auto& way : ways_) way.valid = false;
}

CacheSim::CacheSim(const CacheConfig& l1, const CacheConfig& l2)
    : l1_(l1), l2_(l2) {}

void CacheSim::access(const void* p, std::size_t bytes) {
  const auto addr = reinterpret_cast<std::uint64_t>(p);
  const std::size_t line = l1_.config().line_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) / line;
  ++stats_.refs;
  stats_.bytes += bytes;
  for (std::uint64_t l = first; l <= last; ++l) {
    if (!l1_.access(l)) {
      ++stats_.l1_misses;
      if (!l2_.access(l)) ++stats_.l2_misses;
    }
  }
}

void CacheSim::flush() {
  l1_.flush();
  l2_.flush();
}

}  // namespace fcma::memsim
