// Vector-processing-unit instruction accounting.
//
// Reproduces vTune's "vectorization intensity" metric: the number of active
// vector elements retired divided by the number of VPU instructions retired.
// A kernel that issues full-width 16-lane operations scores 16; scalar code
// that still passes through the VPU (as on Knights Corner) scores ~1.
#pragma once

#include <cstdint>

namespace fcma::memsim {

/// Counts VPU instructions and the lanes they keep busy.
class VpuCounter {
 public:
  /// Records one vector instruction with `active_lanes` useful elements.
  void op(std::uint32_t active_lanes) noexcept {
    ++instructions_;
    elements_ += active_lanes;
  }

  /// Records `n` identical vector instructions at once.
  void ops(std::uint64_t n, std::uint32_t active_lanes) noexcept {
    instructions_ += n;
    elements_ += n * active_lanes;
  }

  [[nodiscard]] std::uint64_t instructions() const noexcept {
    return instructions_;
  }
  [[nodiscard]] std::uint64_t elements() const noexcept { return elements_; }

  /// vTune-style vectorization intensity; 0 if nothing was recorded.
  [[nodiscard]] double intensity() const noexcept {
    return instructions_ == 0
               ? 0.0
               : static_cast<double>(elements_) /
                     static_cast<double>(instructions_);
  }

  void reset() noexcept {
    instructions_ = 0;
    elements_ = 0;
  }

  VpuCounter& operator+=(const VpuCounter& o) noexcept {
    instructions_ += o.instructions_;
    elements_ += o.elements_;
    return *this;
  }

 private:
  std::uint64_t instructions_ = 0;
  std::uint64_t elements_ = 0;
};

}  // namespace fcma::memsim
