// Instrumentation facade used by the *_instrumented kernel variants.
//
// An instrumented kernel performs its real computation with plain scalar
// code (so results can be checked against the fast kernels) and separately
// narrates the instruction stream the production kernel would execute:
// which loads/stores are issued, how wide they are, and how many arithmetic
// vector operations run.  The facade forwards memory operations to the cache
// simulator and lane counts to the VPU counter, and additionally tallies
// floating-point operations for GFLOPS reporting.
#pragma once

#include <cstdint>

#include "memsim/cache.hpp"
#include "memsim/vpu.hpp"

namespace fcma::memsim {

/// Which machine's cache geometry the instrumented run models.
enum class Machine { kPhi5110P, kXeonE5_2670 };

/// Aggregated, machine-independent event counts of one instrumented run.
struct KernelEvents {
  std::uint64_t flops = 0;             ///< useful floating point operations
  std::uint64_t vpu_instructions = 0;  ///< VPU instructions (arith + mem)
  std::uint64_t vpu_elements = 0;      ///< active lanes across those
  std::uint64_t mem_refs = 0;          ///< retired loads + stores
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;

  [[nodiscard]] double vector_intensity() const {
    return vpu_instructions == 0 ? 0.0
                                 : static_cast<double>(vpu_elements) /
                                       static_cast<double>(vpu_instructions);
  }

  KernelEvents& operator+=(const KernelEvents& o) {
    flops += o.flops;
    vpu_instructions += o.vpu_instructions;
    vpu_elements += o.vpu_elements;
    mem_refs += o.mem_refs;
    l1_misses += o.l1_misses;
    l2_misses += o.l2_misses;
    return *this;
  }

  /// Difference of two snapshots taken from the same Instrument (the later
  /// snapshot minus the earlier one) — per-stage deltas.
  friend KernelEvents operator-(const KernelEvents& a, const KernelEvents& b) {
    return KernelEvents{.flops = a.flops - b.flops,
                        .vpu_instructions =
                            a.vpu_instructions - b.vpu_instructions,
                        .vpu_elements = a.vpu_elements - b.vpu_elements,
                        .mem_refs = a.mem_refs - b.mem_refs,
                        .l1_misses = a.l1_misses - b.l1_misses,
                        .l2_misses = a.l2_misses - b.l2_misses};
  }
};

/// Per-thread instrumentation context.
class Instrument {
 public:
  explicit Instrument(Machine machine = Machine::kPhi5110P)
      : cache_(machine == Machine::kPhi5110P ? phi_l1() : xeon_l1(),
               machine == Machine::kPhi5110P ? phi_l2() : xeon_llc()),
        machine_(machine) {}

  /// Models one load instruction of `lanes` single-precision elements.
  void load(const float* p, std::uint32_t lanes) {
    cache_.access(p, lanes * sizeof(float));
    vpu_.op(lanes);
  }

  /// Models one store instruction of `lanes` single-precision elements.
  void store(const float* p, std::uint32_t lanes) {
    cache_.access(p, lanes * sizeof(float));
    vpu_.op(lanes);
  }

  /// Models a broadcast load: one 4-byte memory access replicated to
  /// `lanes` active lanes of the vector register.
  void load_broadcast(const float* p, std::uint32_t lanes) {
    cache_.access(p, sizeof(float));
    vpu_.op(lanes);
  }

  /// Models a load of `lanes` double-precision elements (LibSVM path).
  void load_f64(const double* p, std::uint32_t lanes) {
    cache_.access(p, lanes * sizeof(double));
    vpu_.op(lanes);
  }

  void store_f64(const double* p, std::uint32_t lanes) {
    cache_.access(p, lanes * sizeof(double));
    vpu_.op(lanes);
  }

  /// Models a scalar integer/pointer-sized load (sparse index traversal).
  void load_index(const void* p) {
    cache_.access(p, sizeof(std::int32_t));
    vpu_.op(1);
  }

  /// Models `count` arithmetic vector instructions with `lanes` active
  /// lanes each, contributing `flops_per_instr` useful FLOPs each.
  void arith(std::uint32_t lanes, std::uint64_t count = 1,
             std::uint64_t flops_per_instr = 0) {
    vpu_.ops(count, lanes);
    flops_ += count * flops_per_instr;
  }

  /// Adds useful FLOPs without an instruction (when arith() already modeled
  /// the instruction stream and FLOPs are tallied analytically).
  void add_flops(std::uint64_t n) { flops_ += n; }

  /// Invalidate cache contents (models a cold stage boundary).
  void flush_cache() { cache_.flush(); }

  [[nodiscard]] Machine machine() const { return machine_; }

  /// Snapshot of everything recorded so far.
  [[nodiscard]] KernelEvents events() const {
    const CacheStats& c = cache_.stats();
    return KernelEvents{.flops = flops_,
                        .vpu_instructions = vpu_.instructions(),
                        .vpu_elements = vpu_.elements(),
                        .mem_refs = c.refs,
                        .l1_misses = c.l1_misses,
                        .l2_misses = c.l2_misses};
  }

  void reset() {
    cache_.reset_stats();
    cache_.flush();
    vpu_.reset();
    flops_ = 0;
  }

 private:
  CacheSim cache_;
  VpuCounter vpu_;
  std::uint64_t flops_ = 0;
  Machine machine_;
};

}  // namespace fcma::memsim
