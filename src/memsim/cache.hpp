// Two-level software cache simulator.
//
// The paper's single-node analysis (Tables 1, 6, 7) is driven by three event
// counts collected with Intel vTune: memory references, L2 cache misses and
// vectorization intensity.  vTune and the Xeon Phi are gone, so this module
// recreates the counters: instrumented variants of every FCMA kernel route
// their loads and stores through CacheSim, which models an inclusive
// L1 -> L2 hierarchy with 64-byte lines and LRU replacement.
//
// The simulator is deterministic, which makes the event-count tables exactly
// reproducible — something the original hardware counters were not.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/platform.hpp"

namespace fcma::memsim {

/// Geometry of one cache level.
struct CacheConfig {
  std::size_t size_bytes = 0;
  std::size_t associativity = 8;
  std::size_t line_bytes = kCacheLineBytes;

  /// Number of sets implied by the geometry.
  [[nodiscard]] std::size_t sets() const {
    return size_bytes / (associativity * line_bytes);
  }
};

/// Xeon Phi 5110P per-thread view: 32KB L1D, 512KB unified L2 (per core).
CacheConfig phi_l1();
CacheConfig phi_l2();

/// Xeon E5-2670 per-thread view: 32KB L1D, 2.5MB LLC slice per core
/// (the paper notes ~1.28MB LLC per hyperthread; we model the per-core
/// slice since instrumented kernels are single-threaded).
CacheConfig xeon_l1();
CacheConfig xeon_llc();

/// One set-associative LRU cache level.
class CacheLevel {
 public:
  explicit CacheLevel(const CacheConfig& config);

  /// Looks up (and on miss, fills) the line containing `line_addr`.
  /// Returns true on hit.
  bool access(std::uint64_t line_addr);

  /// Drops all cached lines (used between instrumented pipeline stages when
  /// modeling a cold start).
  void flush();

  [[nodiscard]] const CacheConfig& config() const { return config_; }

 private:
  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  CacheConfig config_;
  std::size_t set_mask_;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_;  // sets() * associativity, set-major
};

/// Aggregate event counts reported by the simulator.
struct CacheStats {
  std::uint64_t refs = 0;        ///< retired load/store operations
  std::uint64_t l1_misses = 0;   ///< L1D misses
  std::uint64_t l2_misses = 0;   ///< L2 (or LLC) misses
  std::uint64_t bytes = 0;       ///< total bytes requested

  CacheStats& operator+=(const CacheStats& o) {
    refs += o.refs;
    l1_misses += o.l1_misses;
    l2_misses += o.l2_misses;
    bytes += o.bytes;
    return *this;
  }
};

/// Inclusive two-level hierarchy with per-access accounting.
class CacheSim {
 public:
  CacheSim(const CacheConfig& l1, const CacheConfig& l2);

  /// Simulates one memory operation of `bytes` starting at `p`.
  /// A single SIMD load/store that spans two lines probes both lines but is
  /// still counted as one memory reference, matching how hardware counts
  /// retired micro-ops.
  void access(const void* p, std::size_t bytes);

  /// Invalidates both levels.
  void flush();

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  CacheLevel l1_;
  CacheLevel l2_;
  CacheStats stats_;
};

}  // namespace fcma::memsim
