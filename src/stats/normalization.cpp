#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/simd.hpp"
#include "stats/normalization.hpp"
#include "stats/stats.hpp"

namespace fcma::stats {

void fisher_zscore_block(float* data, std::size_t epochs, std::size_t width,
                         std::size_t ld) {
  if (epochs == 0 || width == 0) return;
  const float inv_e = 1.0f / static_cast<float>(epochs);
  // Column-chunked two-pass sweep.  The moment accumulation and the final
  // (x - mean) * inv_sd pass run through the runtime-dispatched SIMD
  // micro-kernels; the logf inside fisher_z stays scalar (no portable
  // vector equivalent, and it is elementwise — identical on every ISA).
  const auto& kernels = linalg::simd::kernels();
  constexpr std::size_t kChunk = 64;
  alignas(64) float sum[kChunk];
  alignas(64) float sumsq[kChunk];
  for (std::size_t j0 = 0; j0 < width; j0 += kChunk) {
    const std::size_t w = std::min(kChunk, width - j0);
    std::fill(sum, sum + w, 0.0f);
    std::fill(sumsq, sumsq + w, 0.0f);
    for (std::size_t e = 0; e < epochs; ++e) {
      float* row = data + e * ld + j0;
      for (std::size_t j = 0; j < w; ++j) row[j] = fisher_z(row[j]);
      kernels.accumulate_moments(row, sum, sumsq, w);
    }
    for (std::size_t j = 0; j < w; ++j) {
      const float m = sum[j] * inv_e;
      const float var = std::max(0.0f, sumsq[j] * inv_e - m * m);
      const float inv_sd = var > 0.0f ? 1.0f / std::sqrt(var) : 0.0f;
      sum[j] = m;          // reuse: per-column mean
      sumsq[j] = inv_sd;   // reuse: per-column inverse stddev
    }
    for (std::size_t e = 0; e < epochs; ++e) {
      kernels.zscore_finish(data + e * ld + j0, sum, sumsq, w);
    }
  }
}

void fisher_zscore_block_instrumented(float* data, std::size_t epochs,
                                      std::size_t width, std::size_t ld,
                                      memsim::Instrument& ins,
                                      unsigned model_lanes) {
  if (epochs == 0 || width == 0) return;
  const float inv_e = 1.0f / static_cast<float>(epochs);
  const std::size_t chunk = model_lanes;
  std::vector<float> sum(chunk);
  std::vector<float> sumsq(chunk);
  for (std::size_t j0 = 0; j0 < width; j0 += chunk) {
    const auto w =
        static_cast<unsigned>(std::min<std::size_t>(chunk, width - j0));
    std::fill(sum.begin(), sum.begin() + w, 0.0f);
    std::fill(sumsq.begin(), sumsq.begin() + w, 0.0f);
    for (std::size_t e = 0; e < epochs; ++e) {
      float* row = data + e * ld + j0;
      ins.load(row, w);
      // Fisher per Fig 6: on KNC the transcendental (logf) is one EMU-backed
      // vector sequence; we model it as ~4 vector ops (add, sub, div, log)
      // and count the division + log + scale as 4 FLOPs per element.
      ins.arith(w, 4, 4ull * w);
      ins.arith(w, 2, 3ull * w);  // sum += z; sumsq += z*z (fma)
      for (unsigned j = 0; j < w; ++j) {
        const float z = fisher_z(row[j]);
        row[j] = z;
        sum[j] += z;
        sumsq[j] += z * z;
      }
      ins.store(row, w);
    }
    ins.arith(w, 6, 6ull * w);  // mean, variance, rsqrt per column chunk
    for (unsigned j = 0; j < w; ++j) {
      const float m = sum[j] * inv_e;
      const float var = std::max(0.0f, sumsq[j] * inv_e - m * m);
      const float inv_sd = var > 0.0f ? 1.0f / std::sqrt(var) : 0.0f;
      sum[j] = m;
      sumsq[j] = inv_sd;
    }
    for (std::size_t e = 0; e < epochs; ++e) {
      float* row = data + e * ld + j0;
      ins.load(row, w);
      ins.arith(w, 1, 2ull * w);  // (x - mean) * inv_sd as one FMA
      for (unsigned j = 0; j < w; ++j) {
        row[j] = (row[j] - sum[j]) * sumsq[j];
      }
      ins.store(row, w);
    }
  }
}

}  // namespace fcma::stats
