// Statistical primitives underlying FCMA.
//
// Implements the math of the paper's §3.1: Pearson correlation (eq. 1), the
// normalization that reduces correlation to matrix multiply (eq. 2-3), the
// Fisher transformation (eq. 4), and within-population z-scoring (eq. 5).
#pragma once

#include <cstddef>
#include <span>

namespace fcma::stats {

/// Mean of a sequence (0 for empty input).
[[nodiscard]] double mean(std::span<const float> x);

/// Population variance via the one-pass E[X^2] - E[X]^2 formulation the
/// paper uses in its normalization kernel (§4.3).
[[nodiscard]] double variance_one_pass(std::span<const float> x);

/// Pearson correlation coefficient between two equal-length sequences.
/// This is the reference implementation of eq. 1; the pipeline never calls
/// it on hot paths (it uses the eq. 2-3 reduction instead).
[[nodiscard]] double pearson(std::span<const float> x,
                             std::span<const float> y);

/// Normalizes one epoch vector in place per eq. 2: subtract the mean, then
/// divide by the root sum of squares of the mean-centered values, so that
/// the dot product of two normalized vectors is their Pearson correlation.
/// A constant (zero-variance) vector normalizes to all zeros.
void normalize_epoch(std::span<float> x);

/// Fisher r-to-z transformation (eq. 4), clamped so |r| = 1 maps to a large
/// finite value instead of infinity (matches how FCMA tooling guards the
/// log singularity).
[[nodiscard]] float fisher_z(float r);

/// Largest |z| fisher_z can return (the clamp bound).
[[nodiscard]] float fisher_z_max();

/// Z-scores `x` in place using its own mean/stddev (eq. 5).  A population
/// with zero variance becomes all zeros.
void zscore(std::span<float> x);

}  // namespace fcma::stats
