#include "stats/significance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace fcma::stats {

double log_choose(std::size_t n, std::size_t k) {
  FCMA_CHECK(k <= n, "log_choose: k > n");
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial_sf(std::size_t k, std::size_t n, double p) {
  FCMA_CHECK(p > 0.0 && p < 1.0, "binomial_sf: p must be in (0,1)");
  FCMA_CHECK(n > 0, "binomial_sf: n must be positive");
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  // Sum the exact pmf from k to n in log space (n is a few hundred at most
  // in FCMA, so the direct sum is both exact and cheap).
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  double total = 0.0;
  for (std::size_t i = k; i <= n; ++i) {
    const double log_pmf = log_choose(n, i) +
                           static_cast<double>(i) * log_p +
                           static_cast<double>(n - i) * log_q;
    total += std::exp(log_pmf);
  }
  return std::min(1.0, total);
}

double accuracy_pvalue(std::size_t correct, std::size_t total,
                       double chance) {
  return binomial_sf(correct, total, chance);
}

std::vector<bool> bonferroni(std::span<const double> pvalues, double alpha) {
  const double m = static_cast<double>(pvalues.size());
  std::vector<bool> out(pvalues.size());
  for (std::size_t i = 0; i < pvalues.size(); ++i) {
    out[i] = pvalues[i] * m <= alpha;
  }
  return out;
}

std::vector<bool> benjamini_hochberg(std::span<const double> pvalues,
                                     double q) {
  const std::size_t m = pvalues.size();
  std::vector<bool> out(m, false);
  if (m == 0) return out;
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pvalues[a] < pvalues[b];
  });
  // Largest rank r with p_(r) <= q * r / m; everything up to it passes.
  std::size_t last_pass = 0;  // 1-based; 0 = none
  for (std::size_t r = 1; r <= m; ++r) {
    if (pvalues[order[r - 1]] <=
        q * static_cast<double>(r) / static_cast<double>(m)) {
      last_pass = r;
    }
  }
  for (std::size_t r = 0; r < last_pass; ++r) out[order[r]] = true;
  return out;
}

double permutation_pvalue(double observed,
                          std::span<const double> null_stats) {
  FCMA_CHECK(!null_stats.empty(), "permutation test needs null samples");
  std::size_t ge = 0;
  for (const double s : null_stats) ge += (s >= observed);
  return static_cast<double>(ge + 1) /
         static_cast<double>(null_stats.size() + 1);
}

namespace {

// Continued-fraction core of the incomplete beta (Lentz's algorithm, the
// standard numerically stable formulation).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  FCMA_CHECK(a > 0.0 && b > 0.0, "incomplete_beta: a, b must be positive");
  FCMA_CHECK(x >= 0.0 && x <= 1.0, "incomplete_beta: x must be in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the continued fraction in its fast-converging region, and the
  // symmetry I_x(a,b) = 1 - I_{1-x}(b,a) elsewhere.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double student_t_sf(double t, double df) {
  FCMA_CHECK(df > 0.0, "student_t_sf: df must be positive");
  const double x = df / (df + t * t);
  const double tail = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
  return t >= 0.0 ? tail : 1.0 - tail;
}

TTestResult one_sample_t_test(std::span<const double> x, double mu0) {
  FCMA_CHECK(x.size() >= 2, "t test needs at least two samples");
  const auto n = static_cast<double>(x.size());
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= n;
  double ss = 0.0;
  for (const double v : x) ss += (v - mean) * (v - mean);
  const double var = ss / (n - 1.0);
  TTestResult r;
  r.df = n - 1.0;
  if (var <= 0.0) {
    r.t = mean == mu0 ? 0.0 : std::numeric_limits<double>::infinity() *
                                  (mean > mu0 ? 1.0 : -1.0);
    r.pvalue = mean == mu0 ? 1.0 : 0.0;
    return r;
  }
  r.t = (mean - mu0) / std::sqrt(var / n);
  r.pvalue = 2.0 * student_t_sf(std::abs(r.t), r.df);
  return r;
}

TTestResult paired_t_test(std::span<const double> x,
                          std::span<const double> y) {
  FCMA_CHECK(x.size() == y.size(), "paired t test needs equal sizes");
  std::vector<double> diff(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) diff[i] = x[i] - y[i];
  return one_sample_t_test(diff);
}

}  // namespace fcma::stats
