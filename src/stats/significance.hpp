// Statistical significance of voxel accuracies.
//
// FCMA's selection step ranks voxels by cross-validation accuracy; the
// neuroscientific analysis then needs to know which accuracies are *better
// than chance* and how to control the error rate over ~35,000 simultaneous
// tests ("the selected voxels across different folds can be statistically
// compared to identify the reliable voxels", paper §5.2.1).  This module
// provides the standard machinery:
//
//   * exact binomial tail p-values for k-of-n correct classifications;
//   * label-permutation testing (the assumption-free alternative);
//   * Bonferroni and Benjamini-Hochberg (FDR) multiple-comparison control.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fcma::stats {

/// log of the binomial coefficient C(n, k).
[[nodiscard]] double log_choose(std::size_t n, std::size_t k);

/// Exact one-sided binomial tail: P(X >= k) for X ~ Binomial(n, p).
/// This is the p-value of classifying k of n test samples correctly when
/// the true accuracy is the chance level p.
[[nodiscard]] double binomial_sf(std::size_t k, std::size_t n, double p);

/// p-value of an observed classification accuracy under the chance-level
/// null (p = 0.5 for balanced two-condition designs).
[[nodiscard]] double accuracy_pvalue(std::size_t correct, std::size_t total,
                                     double chance = 0.5);

/// Bonferroni-adjusted significance: true where p * m <= alpha.
[[nodiscard]] std::vector<bool> bonferroni(std::span<const double> pvalues,
                                           double alpha);

/// Benjamini-Hochberg FDR control: true for every test whose p-value falls
/// at or below the adaptive BH threshold at level `q`.
[[nodiscard]] std::vector<bool> benjamini_hochberg(
    std::span<const double> pvalues, double q);

/// Permutation-test p-value: fraction of `null_stats` greater than or equal
/// to `observed` (with the +1/+1 correction so p is never exactly 0).
[[nodiscard]] double permutation_pvalue(double observed,
                                        std::span<const double> null_stats);

/// Regularized incomplete beta function I_x(a, b) via Lentz's continued
/// fraction — the primitive behind Student-t tail probabilities.
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// One-sided Student-t survival function P(T >= t) with `df` degrees of
/// freedom.
[[nodiscard]] double student_t_sf(double t, double df);

/// Result of a t test.
struct TTestResult {
  double t = 0.0;
  double df = 0.0;
  double pvalue = 1.0;  ///< two-sided
};

/// One-sample t test of mean(x) against mu0.
[[nodiscard]] TTestResult one_sample_t_test(std::span<const double> x,
                                            double mu0 = 0.0);

/// Paired t test: one-sample test on the elementwise differences x - y.
[[nodiscard]] TTestResult paired_t_test(std::span<const double> x,
                                        std::span<const double> y);

}  // namespace fcma::stats
