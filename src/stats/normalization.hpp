// Within-subject normalization kernel (paper §3.1 stage 2, optimized per
// §4.3 / Fig 6).
//
// Input: a block of correlation coefficients for one voxel — E rows (that
// subject's epochs) by `width` columns (a stripe of the other voxels), with
// row stride `ld`.  The kernel applies the Fisher transformation to every
// element and then z-scores each *column* across the E rows, exactly the
// per-(voxel, subject, other-voxel) population the paper's Fig 4 describes.
//
// The optimized layout processes columns in SIMD-width chunks with two
// passes: pass 1 applies Fisher and accumulates sum and sum-of-squares
// (E[X^2]-E[X]^2 single-pass variance); pass 2 subtracts the mean and
// scales by 1/stddev.
#pragma once

#include <cstddef>

#include "memsim/instrument.hpp"

namespace fcma::stats {

/// Fisher-transforms and column-z-scores a correlation block in place.
void fisher_zscore_block(float* data, std::size_t epochs, std::size_t width,
                         std::size_t ld);

/// Instrumented twin: identical results, narrating the Fig 6 instruction
/// stream (16-voxel SIMD chunks, two passes) to `ins`.
void fisher_zscore_block_instrumented(float* data, std::size_t epochs,
                                      std::size_t width, std::size_t ld,
                                      memsim::Instrument& ins,
                                      unsigned model_lanes = 16);

}  // namespace fcma::stats
