#include "stats/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace fcma::stats {

namespace {
// r is clamped to +/- (1 - kREps) before the log, bounding |z| at ~6.1.
// The margin is deliberately wider than float round-off: self-correlations
// computed by different kernels land at 1 +/- O(1e-7) and must all saturate
// to the *same* z, otherwise the later within-subject z-scoring amplifies
// kernel-dependent noise into O(1) differences.
constexpr float kREps = 1e-5f;
}  // namespace

double mean(std::span<const float> x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (float v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance_one_pass(std::span<const float> x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  double sq = 0.0;
  for (float v : x) {
    s += v;
    sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(x.size());
  const double m = s / n;
  return std::max(0.0, sq / n - m * m);
}

double pearson(std::span<const float> x, std::span<const float> y) {
  FCMA_CHECK(x.size() == y.size() && !x.empty(), "pearson: bad inputs");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  const double denom = std::sqrt(sxx * syy);
  return denom == 0.0 ? 0.0 : sxy / denom;
}

void normalize_epoch(std::span<float> x) {
  if (x.empty()) return;
  const double m = mean(x);
  double ss = 0.0;
  for (float v : x) {
    const double d = v - m;
    ss += d * d;
  }
  if (ss <= 0.0) {
    std::fill(x.begin(), x.end(), 0.0f);
    return;
  }
  const auto inv = static_cast<float>(1.0 / std::sqrt(ss));
  for (float& v : x) v = (v - static_cast<float>(m)) * inv;
}

float fisher_z(float r) {
  r = std::clamp(r, -(1.0f - kREps), 1.0f - kREps);
  return 0.5f * std::log((1.0f + r) / (1.0f - r));
}

float fisher_z_max() { return fisher_z(1.0f); }

void zscore(std::span<float> x) {
  if (x.empty()) return;
  const double var = variance_one_pass(x);
  const double m = mean(x);
  if (var <= 0.0) {
    std::fill(x.begin(), x.end(), 0.0f);
    return;
  }
  const auto inv = static_cast<float>(1.0 / std::sqrt(var));
  for (float& v : x) v = (v - static_cast<float>(m)) * inv;
}

}  // namespace fcma::stats
