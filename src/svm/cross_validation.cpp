#include "svm/cross_validation.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace fcma::svm {

const char* to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::kLibSvm: return "LibSVM";
    case SolverKind::kOptimizedLibSvm: return "Optimized LibSVM";
    case SolverKind::kPhiSvm: return "PhiSVM";
  }
  return "?";
}

Model train(SolverKind kind, linalg::ConstMatrixView kernel,
            std::span<const std::int8_t> labels,
            std::span<const std::size_t> train_idx,
            const TrainOptions& options, memsim::Instrument* ins,
            unsigned model_lanes) {
  switch (kind) {
    case SolverKind::kLibSvm:
      return libsvm_train(kernel, labels, train_idx, options, ins);
    case SolverKind::kOptimizedLibSvm:
      return optimized_libsvm_train(kernel, labels, train_idx, options, ins,
                                    model_lanes);
    case SolverKind::kPhiSvm:
      return phisvm_train(kernel, labels, train_idx, options, ins,
                          model_lanes);
  }
  raise("unknown solver kind");
}

std::vector<std::vector<std::size_t>> loso_folds(
    std::span<const std::int32_t> subject_of_sample, std::int32_t subjects) {
  FCMA_CHECK(subjects > 0, "need at least one subject");
  std::vector<std::vector<std::size_t>> folds(
      static_cast<std::size_t>(subjects));
  for (std::size_t t = 0; t < subject_of_sample.size(); ++t) {
    const std::int32_t s = subject_of_sample[t];
    FCMA_CHECK(s >= 0 && s < subjects, "subject id out of range");
    folds[static_cast<std::size_t>(s)].push_back(t);
  }
  for (const auto& f : folds) {
    FCMA_CHECK(!f.empty(), "every subject needs samples");
  }
  return folds;
}

CvResult cross_validate(SolverKind kind, linalg::ConstMatrixView kernel,
                        std::span<const std::int8_t> labels,
                        const std::vector<std::vector<std::size_t>>& folds,
                        const TrainOptions& options, memsim::Instrument* ins,
                        unsigned model_lanes) {
  const std::size_t n = kernel.rows;
  std::vector<bool> in_test(n, false);
  CvResult result;
  for (const auto& test : folds) {
    std::fill(in_test.begin(), in_test.end(), false);
    for (const std::size_t t : test) {
      FCMA_CHECK(t < n, "fold index out of range");
      in_test[t] = true;
    }
    std::vector<std::size_t> train_idx;
    train_idx.reserve(n - test.size());
    for (std::size_t t = 0; t < n; ++t) {
      if (!in_test[t]) train_idx.push_back(t);
    }
    const Model model =
        train(kind, kernel, labels, train_idx, options, ins, model_lanes);
    result.iterations += model.iterations;
    for (const std::size_t t : test) {
      const double f = decision_value(model, kernel, t, train_idx);
      const std::int8_t predicted = f >= 0.0 ? 1 : -1;
      result.correct += (predicted == labels[t]);
      ++result.total;
    }
  }
  return result;
}

}  // namespace fcma::svm
