// Faithful LibSVM 3.20 C-SVC reimplementation (the paper's baseline).
//
// FCMA's baseline feeds each voxel's precomputed linear-kernel matrix to
// LibSVM.  This solver reproduces LibSVM's algorithm *and* the performance
// characteristics the paper calls out in §3.3.3:
//
//   * samples are stored as sparse {index, value} node arrays even though
//     the data are dense kernel rows — kernel evaluation is an index-walk;
//   * intermediate math is double precision, with per-element conversion to
//     float when a row enters the LRU cache (the "unnecessary data type
//     conversions" of §3.3.3);
//   * sequential minimal optimization with Fan/Chen/Lin second-order
//     working-set selection and an LRU kernel-row cache.
//
// When an Instrument is supplied, the hot loops narrate their (scalar,
// double-precision) instruction stream for the Table 1/8 reproductions.
#pragma once

#include <span>

#include "svm/types.hpp"

namespace fcma::svm {

/// Trains C-SVC on the rows/columns `train_idx` of a precomputed kernel
/// matrix.  `labels[t]` must be +1/-1 for every sample of the full matrix.
/// `ins` (optional) receives the modeled instruction stream.
[[nodiscard]] Model libsvm_train(linalg::ConstMatrixView kernel,
                                 std::span<const std::int8_t> labels,
                                 std::span<const std::size_t> train_idx,
                                 const TrainOptions& options,
                                 memsim::Instrument* ins = nullptr);

}  // namespace fcma::svm
