// Cross-validation drivers for the per-voxel SVM stage.
//
// FCMA scores each voxel by leave-one-subject-out cross-validation of a
// linear SVM over the voxel's correlation vectors (paper §3.1 stage 3).
// Samples are epochs; folds group epochs by subject so that generalization
// is always measured across subjects.
#pragma once

#include <span>
#include <vector>

#include "svm/dense_solver.hpp"
#include "svm/libsvm_solver.hpp"
#include "svm/types.hpp"

namespace fcma::svm {

/// Which solver implementation to use (paper Table 8 compares all three).
enum class SolverKind {
  kLibSvm,           ///< baseline: sparse, double (LibSVM 3.20 behaviour)
  kOptimizedLibSvm,  ///< dense float, second-order heuristic
  kPhiSvm,           ///< dense float, adaptive heuristic
};

[[nodiscard]] const char* to_string(SolverKind kind);

/// Dispatches training to the selected implementation.
[[nodiscard]] Model train(SolverKind kind, linalg::ConstMatrixView kernel,
                          std::span<const std::int8_t> labels,
                          std::span<const std::size_t> train_idx,
                          const TrainOptions& options,
                          memsim::Instrument* ins = nullptr,
                          unsigned model_lanes = 16);

/// Builds leave-one-subject-out folds: fold s = the sample indices whose
/// subject is s.  `subject_of_sample[t]` gives the owning subject.
[[nodiscard]] std::vector<std::vector<std::size_t>> loso_folds(
    std::span<const std::int32_t> subject_of_sample, std::int32_t subjects);

/// Runs k-fold cross-validation: for each fold, trains on the complement
/// and classifies the fold's samples by the sign of the decision value.
[[nodiscard]] CvResult cross_validate(
    SolverKind kind, linalg::ConstMatrixView kernel,
    std::span<const std::int8_t> labels,
    const std::vector<std::vector<std::size_t>>& folds,
    const TrainOptions& options, memsim::Instrument* ins = nullptr,
    unsigned model_lanes = 16);

}  // namespace fcma::svm
