#include "svm/dense_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"

namespace fcma::svm {

namespace {

constexpr float kTau = 1e-12f;

// Adaptive-heuristic schedule: probe each heuristic for kProbe iterations,
// then run the winner for kExploit iterations before re-probing.  This is
// the convergence-rate adaptation PhiSVM inherits from the GPU SVM of
// Catanzaro et al.
constexpr long kProbe = 64;
constexpr long kExploit = 512;

class DenseSmo {
 public:
  DenseSmo(linalg::ConstMatrixView kernel, std::span<const std::int8_t> labels,
           std::span<const std::size_t> train_idx,
           const TrainOptions& options, Heuristic heuristic,
           memsim::Instrument* ins, unsigned lanes, bool materialize_q)
      : options_(options),
        heuristic_(heuristic),
        ins_(ins),
        lanes_(lanes),
        materialize_q_(materialize_q),
        n_(train_idx.size()),
        k_(n_ * n_),
        y_(n_),
        yf_(n_),
        alpha_(n_, 0.0f),
        gradient_(n_, -1.0f) {
    if (materialize_q_) {
      q_buf_i_.resize(n_);
      q_buf_j_.resize(n_);
    }
    FCMA_CHECK(n_ >= 2, "need at least two training samples");
    // Dense float packing of the training submatrix: contiguous rows, no
    // index metadata — this is optimization idea #3 applied to the SVM.
    for (std::size_t i = 0; i < n_; ++i) {
      y_[i] = labels[train_idx[i]];
      FCMA_CHECK(y_[i] == 1 || y_[i] == -1, "labels must be +1/-1");
      yf_[i] = static_cast<float>(y_[i]);
      const float* src = kernel.row(train_idx[i]);
      float* dst = k_.data() + i * n_;
      for (std::size_t j = 0; j < n_; ++j) dst[j] = src[train_idx[j]];
    }
  }

  Model solve() {
    const long max_iter = options_.max_iterations > 0
                              ? options_.max_iterations
                              : std::max<long>(10000000,
                                               100 * static_cast<long>(n_));
    long iter = 0;
    Heuristic active = heuristic_ == Heuristic::kAdaptive
                           ? Heuristic::kSecondOrder
                           : heuristic_;
    // Adaptive state: objective decrease observed per probe window.
    double probe_obj_start = 0.0;
    long phase_left = heuristic_ == Heuristic::kAdaptive ? kProbe : 0;
    int probe_stage = 0;  // 0: probing 2nd order, 1: probing 1st, 2: exploit
    double rate_second = 0.0;
    double rate_first = 0.0;

    while (iter < max_iter) {
      int i = -1;
      int j = -1;
      if (!select(active, i, j)) break;
      update_pair(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
      ++iter;

      if (heuristic_ == Heuristic::kAdaptive && --phase_left <= 0) {
        const double obj = objective();
        const double rate = probe_obj_start - obj;  // decrease this window
        switch (probe_stage) {
          case 0:
            rate_second = rate;
            active = Heuristic::kFirstOrder;
            probe_stage = 1;
            phase_left = kProbe;
            break;
          case 1:
            rate_first = rate;
            // First-order iterations are cheaper (no gain scan); weight its
            // measured decrease accordingly before comparing.
            active = (rate_first * 1.5 > rate_second)
                         ? Heuristic::kFirstOrder
                         : Heuristic::kSecondOrder;
            probe_stage = 2;
            phase_left = kExploit;
            break;
          default:
            active = Heuristic::kSecondOrder;
            probe_stage = 0;
            phase_left = kProbe;
            break;
        }
        probe_obj_start = obj;
      }
    }

    Model model;
    model.iterations = iter;
    model.alpha_y.resize(n_);
    for (std::size_t t = 0; t < n_; ++t) {
      model.alpha_y[t] = static_cast<double>(alpha_[t]) * y_[t];
    }
    model.rho = compute_rho();
    model.objective = objective();
    return model;
  }

 private:
  [[nodiscard]] const float* k_row(std::size_t i) const {
    return k_.data() + i * n_;
  }

  [[nodiscard]] double objective() const {
    double obj = 0.0;
    for (std::size_t t = 0; t < n_; ++t) {
      obj += static_cast<double>(alpha_[t]) * (gradient_[t] - 1.0f);
    }
    return obj / 2.0;
  }

  [[nodiscard]] bool in_up(std::size_t t) const {
    return y_[t] == 1 ? alpha_[t] < options_.c : alpha_[t] > 0.0f;
  }
  [[nodiscard]] bool in_low(std::size_t t) const {
    return y_[t] == 1 ? alpha_[t] > 0.0f : alpha_[t] < options_.c;
  }

  bool select(Heuristic heuristic, int& out_i, int& out_j) {
    float g_max = -std::numeric_limits<float>::infinity();
    float g_min = std::numeric_limits<float>::infinity();
    int i_max = -1;
    int j_min = -1;
    // One vectorizable sweep computes -y*G and tracks both extrema.
    for (std::size_t t = 0; t < n_; ++t) {
      const float v = -yf_[t] * gradient_[t];
      if (in_up(t) && v >= g_max) {
        g_max = v;
        i_max = static_cast<int>(t);
      }
      if (in_low(t) && v <= g_min) {
        g_min = v;
        j_min = static_cast<int>(t);
      }
    }
    narrate_sweep(3);  // load G, multiply, compare per chunk
    if (i_max < 0 || j_min < 0) return false;
    if (g_max - g_min < static_cast<float>(options_.tolerance)) return false;

    if (heuristic == Heuristic::kFirstOrder) {
      out_i = i_max;
      out_j = j_min;
      return true;
    }

    // Second order: keep i, rescan for the j maximizing the gain.
    const auto i = static_cast<std::size_t>(i_max);
    const float* ki = k_row(i);
    const float kii = ki[i];
    int j_best = -1;
    float best = std::numeric_limits<float>::infinity();
    for (std::size_t t = 0; t < n_; ++t) {
      if (!in_low(t)) continue;
      const float v = -yf_[t] * gradient_[t];
      const float diff = g_max - v;
      if (diff <= 0.0f) continue;
      // Subproblem curvature ||phi(x_i) - phi(x_t)||^2, label-independent
      // in raw-kernel terms.
      const float quad = std::max(kii + k_row(t)[t] - 2.0f * ki[t], kTau);
      const float gain = -(diff * diff) / quad;
      if (gain <= best) {
        best = gain;
        j_best = static_cast<int>(t);
      }
    }
    narrate_sweep(6);  // the gain scan touches K row + G per element
    if (j_best < 0) return false;
    out_i = i_max;
    out_j = j_best;
    return true;
  }

  void update_pair(std::size_t i, std::size_t j) {
    const float* ki = k_row(i);
    const float* kj = k_row(j);
    const auto c = static_cast<float>(options_.c);
    const float old_ai = alpha_[i];
    const float old_aj = alpha_[j];

    const float quad = std::max(ki[i] + kj[j] - 2.0f * ki[j], kTau);
    if (y_[i] != y_[j]) {
      const float delta = (-gradient_[i] - gradient_[j]) / quad;
      const float diff = alpha_[i] - alpha_[j];
      alpha_[i] += delta;
      alpha_[j] += delta;
      if (diff > 0.0f) {
        if (alpha_[j] < 0.0f) {
          alpha_[j] = 0.0f;
          alpha_[i] = diff;
        }
        if (alpha_[i] > c) {
          alpha_[i] = c;
          alpha_[j] = c - diff;
        }
      } else {
        if (alpha_[i] < 0.0f) {
          alpha_[i] = 0.0f;
          alpha_[j] = -diff;
        }
        if (alpha_[j] > c) {
          alpha_[j] = c;
          alpha_[i] = c + diff;
        }
      }
    } else {
      const float delta = (gradient_[i] - gradient_[j]) / quad;
      const float sum = alpha_[i] + alpha_[j];
      alpha_[i] -= delta;
      alpha_[j] += delta;
      if (sum > c) {
        if (alpha_[i] > c) {
          alpha_[i] = c;
          alpha_[j] = sum - c;
        }
        if (alpha_[j] > c) {
          alpha_[j] = c;
          alpha_[i] = sum - c;
        }
      } else {
        if (alpha_[j] < 0.0f) {
          alpha_[j] = 0.0f;
          alpha_[i] = sum;
        }
        if (alpha_[i] < 0.0f) {
          alpha_[i] = 0.0f;
          alpha_[j] = sum;
        }
      }
    }

    const float dai = alpha_[i] - old_ai;
    const float daj = alpha_[j] - old_aj;
    float* FCMA_RESTRICT g = gradient_.data();
    const float* FCMA_RESTRICT yv = yf_.data();
    if (materialize_q_) {
      // LibSVM structure retained: build the signed Q rows first, then run
      // LibSVM's gradient recurrence over them.
      float* FCMA_RESTRICT qi = q_buf_i_.data();
      float* FCMA_RESTRICT qj = q_buf_j_.data();
      for (std::size_t t = 0; t < n_; ++t) {
        qi[t] = yf_[i] * yv[t] * ki[t];
        qj[t] = yf_[j] * yv[t] * kj[t];
      }
      for (std::size_t t = 0; t < n_; ++t) {
        g[t] += dai * qi[t] + daj * qj[t];
      }
      if (ins_ != nullptr) {
        const std::uint64_t chunks = (n_ + lanes_ - 1) / lanes_;
        // Materialization: 2 multiplies + store per row; update: 2 FMAs.
        ins_->arith(lanes_, 4 * chunks, 4ull * n_);
        ins_->arith(lanes_, 2 * chunks, 4ull * n_);
        for (std::size_t t = 0; t < n_; t += lanes_) {
          const auto l =
              static_cast<unsigned>(std::min<std::size_t>(lanes_, n_ - t));
          ins_->load(ki + t, l);
          ins_->load(kj + t, l);
          ins_->load(yv + t, l);
          ins_->store(qi + t, l);
          ins_->store(qj + t, l);
          ins_->load(qi + t, l);
          ins_->load(qj + t, l);
          ins_->load(g + t, l);
          ins_->store(g + t, l);
        }
      }
    } else {
      // PhiSVM: labels folded into the update constants, one fused pass
      // directly over the kernel rows.
      const float ci = dai * yf_[i];
      const float cj = daj * yf_[j];
      for (std::size_t t = 0; t < n_; ++t) {
        g[t] += yv[t] * (ci * ki[t] + cj * kj[t]);
      }
      if (ins_ != nullptr) {
        // Per chunk: load Ki, Kj, y, G; 3 FMAs; store G.
        const std::uint64_t chunks = (n_ + lanes_ - 1) / lanes_;
        ins_->arith(lanes_, 3 * chunks, 6ull * n_);
        for (std::size_t t = 0; t < n_; t += lanes_) {
          const auto l =
              static_cast<unsigned>(std::min<std::size_t>(lanes_, n_ - t));
          ins_->load(ki + t, l);
          ins_->load(kj + t, l);
          ins_->load(yv + t, l);
          ins_->load(g + t, l);
          ins_->store(g + t, l);
        }
      }
    }
  }

  /// Narrates one vectorized O(n) selection sweep: `ops_per_chunk` vector
  /// instructions per lanes_-wide chunk plus the gradient loads.
  void narrate_sweep(unsigned ops_per_chunk) {
    if (ins_ == nullptr) return;
    for (std::size_t t = 0; t < n_; t += lanes_) {
      const auto l =
          static_cast<unsigned>(std::min<std::size_t>(lanes_, n_ - t));
      ins_->load(gradient_.data() + t, l);
      ins_->arith(l, ops_per_chunk, l);
      // Index/mask bookkeeping of the argmin/argmax reduction is scalar.
      ins_->arith(1, 2);
    }
  }

  double compute_rho() const {
    double upper = std::numeric_limits<double>::infinity();
    double lower = -std::numeric_limits<double>::infinity();
    double sum_free = 0.0;
    std::size_t n_free = 0;
    for (std::size_t t = 0; t < n_; ++t) {
      const double yg = y_[t] * static_cast<double>(gradient_[t]);
      if (alpha_[t] >= options_.c) {
        if (y_[t] == -1) {
          upper = std::min(upper, yg);
        } else {
          lower = std::max(lower, yg);
        }
      } else if (alpha_[t] <= 0.0f) {
        if (y_[t] == 1) {
          upper = std::min(upper, yg);
        } else {
          lower = std::max(lower, yg);
        }
      } else {
        ++n_free;
        sum_free += yg;
      }
    }
    if (n_free > 0) return sum_free / static_cast<double>(n_free);
    return (upper + lower) / 2.0;
  }

  TrainOptions options_;
  Heuristic heuristic_;
  memsim::Instrument* ins_;
  unsigned lanes_;
  bool materialize_q_;
  std::size_t n_;
  AlignedBuffer<float> k_;        // dense [n x n] training kernel
  std::vector<std::int8_t> y_;
  std::vector<float> yf_;
  std::vector<float> alpha_;
  std::vector<float> gradient_;
  std::vector<float> q_buf_i_;  // materialized Q rows (LibSVM-structure mode)
  std::vector<float> q_buf_j_;
};

}  // namespace

Model dense_train(linalg::ConstMatrixView kernel,
                  std::span<const std::int8_t> labels,
                  std::span<const std::size_t> train_idx,
                  const TrainOptions& options, Heuristic heuristic,
                  memsim::Instrument* ins, unsigned model_lanes,
                  bool materialize_q) {
  FCMA_CHECK(kernel.rows == kernel.cols, "kernel matrix must be square");
  FCMA_CHECK(labels.size() == kernel.rows, "one label per kernel row");
  DenseSmo smo(kernel, labels, train_idx, options, heuristic, ins,
               model_lanes, materialize_q);
  return smo.solve();
}

}  // namespace fcma::svm
