// Common types of the SVM substrate.
//
// FCMA's third stage solves, per voxel, a binary C-SVC problem over a
// precomputed linear-kernel matrix (paper §3.2, §4.4): a few hundred
// samples (epochs) whose features are ~35k-dimensional correlation vectors,
// reduced to an [n x n] kernel.  Three solver implementations share these
// types:
//
//   LibSvmSolver   — faithful LibSVM 3.20 reimplementation: per-sample
//                    sparse node arrays, double-precision math, an LRU row
//                    cache with float storage (the paper's baseline);
//   dense_train    — float, dense rows (the paper's "optimized LibSVM" with
//                    the second-order heuristic, and "PhiSVM" with the
//                    adaptive first/second-order heuristic).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "memsim/instrument.hpp"

namespace fcma::svm {

/// C-SVC training options (defaults match LibSVM's).
struct TrainOptions {
  double c = 1.0;           ///< box constraint
  double tolerance = 1e-3;  ///< KKT stopping tolerance
  long max_iterations = 0;  ///< 0 = LibSVM's heuristic cap
  std::size_t cache_rows = 0;  ///< LibSvmSolver row-cache capacity
                               ///< (0 = cache every row)
  bool shrinking = true;       ///< LibSvmSolver active-set shrinking
};

/// Trained model over the training subset it was fitted on.
struct Model {
  /// alpha_i * y_i, aligned with the training-index order passed to train.
  std::vector<double> alpha_y;
  double rho = 0.0;       ///< decision threshold
  long iterations = 0;    ///< SMO iterations until convergence
  double objective = 0.0; ///< final dual objective value

  [[nodiscard]] std::size_t support_vectors() const {
    std::size_t n = 0;
    for (double a : alpha_y) n += (a != 0.0);
    return n;
  }
};

/// Decision value for sample `t` of the full kernel matrix against a model
/// trained on rows `train_idx`: f(t) = sum_i alpha_y[i] * K(t, idx[i]) - rho.
[[nodiscard]] inline double decision_value(
    const Model& model, linalg::ConstMatrixView kernel, std::size_t t,
    std::span<const std::size_t> train_idx) {
  const float* row = kernel.row(t);
  double f = 0.0;
  for (std::size_t i = 0; i < train_idx.size(); ++i) {
    f += model.alpha_y[i] * static_cast<double>(row[train_idx[i]]);
  }
  return f - model.rho;
}

/// Outcome of one cross-validation run.
struct CvResult {
  std::size_t correct = 0;
  std::size_t total = 0;
  long iterations = 0;  ///< summed SMO iterations over all folds

  [[nodiscard]] double accuracy() const {
    return total == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(total);
  }
};

}  // namespace fcma::svm
