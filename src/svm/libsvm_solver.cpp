#include "svm/libsvm_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <list>
#include <vector>

#include "common/error.hpp"

namespace fcma::svm {

namespace {

constexpr double kTau = 1e-12;  // LibSVM's TAU: floor for curvature

/// LibSVM-style sparse node.  The baseline stores every (dense!) kernel row
/// this way; traversing it is the index-chasing, scalar access pattern that
/// caps the baseline's vectorization intensity.
struct Node {
  std::int32_t index;
  double value;
};

/// The SMO state for one training subproblem.
class Smo {
 public:
  Smo(linalg::ConstMatrixView kernel, std::span<const std::int8_t> labels,
      std::span<const std::size_t> train_idx, const TrainOptions& options,
      memsim::Instrument* ins)
      : options_(options), ins_(ins), n_(train_idx.size()) {
    FCMA_CHECK(n_ >= 2, "need at least two training samples");
    // Materialize the sparse node arrays: sample i holds the kernel values
    // against every other training sample, tagged with integer indices and
    // terminated by index -1, exactly like svm_node in LibSVM.
    nodes_.resize(n_ * (n_ + 1));
    y_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      y_[i] = labels[train_idx[i]];
      FCMA_CHECK(y_[i] == 1 || y_[i] == -1, "labels must be +1/-1");
      const float* row = kernel.row(train_idx[i]);
      Node* out = &nodes_[i * (n_ + 1)];
      for (std::size_t j = 0; j < n_; ++j) {
        out[j].index = static_cast<std::int32_t>(j);
        out[j].value = static_cast<double>(row[train_idx[j]]);
      }
      out[n_].index = -1;
    }
    alpha_.assign(n_, 0.0);
    gradient_.assign(n_, -1.0);
    g_bar_.assign(n_, 0.0);
    qd_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) qd_[i] = kernel_eval(i, i);
    active_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) active_[i] = i;
    active_size_ = n_;
    cache_rows_ = options.cache_rows == 0 ? n_ : options.cache_rows;
    cache_storage_.assign(cache_rows_ * n_, 0.0f);
    cache_of_.assign(n_, kNoCache);
  }

  Model solve() {
    // LibSVM's cap: at least 10M iterations, or 100 per sample.
    const long max_iter = options_.max_iterations > 0
                              ? options_.max_iterations
                              : std::max<long>(10000000,
                                               100 * static_cast<long>(n_));
    long iter = 0;
    // LibSVM's shrinking cadence: reconsider the active set every
    // min(n, 1000) iterations.
    long counter = std::min<long>(static_cast<long>(n_), 1000) + 1;
    while (iter < max_iter) {
      if (options_.shrinking && --counter == 0) {
        counter = std::min<long>(static_cast<long>(n_), 1000);
        do_shrinking();
      }
      int i = -1;
      int j = -1;
      if (!select_working_set(i, j)) {
        // Converged on the (possibly shrunk) active set: reconstruct the
        // full gradient and retry over all variables, as LibSVM does.
        if (active_size_ == n_) break;
        reconstruct_gradient();
        active_size_ = n_;
        if (!select_working_set(i, j)) break;
      }
      update_pair(i, j);
      ++iter;
    }
    if (active_size_ < n_) {
      reconstruct_gradient();
      active_size_ = n_;
    }
    Model model;
    model.iterations = iter;
    model.alpha_y.resize(n_);
    for (std::size_t t = 0; t < n_; ++t) {
      model.alpha_y[t] = alpha_[t] * y_[t];
    }
    model.rho = compute_rho();
    double obj = 0.0;
    for (std::size_t t = 0; t < n_; ++t) {
      obj += alpha_[t] * (gradient_[t] - 1.0);
    }
    model.objective = obj / 2.0;
    return model;
  }

 private:
  static constexpr std::size_t kNoCache = static_cast<std::size_t>(-1);

  /// Kernel evaluation through the sparse node array: walk the index list
  /// until the entry for j is found.  Dense data means the walk hits
  /// immediately, but the traversal still loads index + value per step —
  /// the access pattern we instrument.
  double kernel_eval(std::size_t i, std::size_t j) {
    const Node* px = &nodes_[i * (n_ + 1)];
    while (px->index != -1) {
      if (ins_ != nullptr) ins_->load_index(&px->index);
      if (static_cast<std::size_t>(px->index) == j) {
        if (ins_ != nullptr) ins_->load_f64(&px->value, 1);
        return px->value;
      }
      ++px;
    }
    return 0.0;
  }

  /// Returns the cached Q row for sample i, computing (and converting to
  /// float, as LibSVM's Qfloat cache does) on a miss.
  const float* q_row(std::size_t i) {
    if (cache_of_[i] != kNoCache) {
      lru_.remove(i);
      lru_.push_back(i);
      return &cache_storage_[cache_of_[i] * n_];
    }
    std::size_t slot;
    if (lru_.size() < cache_rows_) {
      slot = lru_.size();
    } else {
      const std::size_t evict = lru_.front();
      lru_.pop_front();
      slot = cache_of_[evict];
      cache_of_[evict] = kNoCache;
    }
    cache_of_[i] = slot;
    lru_.push_back(i);
    float* row = &cache_storage_[slot * n_];
    const Node* px = &nodes_[i * (n_ + 1)];
    for (std::size_t j = 0; j < n_; ++j) {
      // Node walk + double multiply + narrowing conversion per element.
      const double q = y_[i] * y_[j] * px[j].value;
      row[j] = static_cast<float>(q);
      if (ins_ != nullptr) {
        ins_->load_index(&px[j].index);
        ins_->load_f64(&px[j].value, 1);
        ins_->arith(1, 2, 2);  // two scalar multiplies
        ins_->arith(1, 1, 0);  // double->float convert
        ins_->store(row + j, 1);
      }
    }
    return row;
  }

  /// Fan/Chen/Lin (2005) second-order working-set selection; returns false
  /// when the KKT violation is below tolerance (converged).
  bool select_working_set(int& out_i, int& out_j) {
    double g_max = -std::numeric_limits<double>::infinity();
    double g_max2 = -std::numeric_limits<double>::infinity();
    int g_max_idx = -1;
    for (std::size_t pos = 0; pos < active_size_; ++pos) {
      const std::size_t t = active_[pos];
      if (ins_ != nullptr) {
        ins_->load_f64(&gradient_[t], 1);
        ins_->arith(1, 1, 1);
      }
      if (y_[t] == 1 ? alpha_[t] < options_.c : alpha_[t] > 0.0) {
        const double v = -y_[t] * gradient_[t];
        if (v >= g_max) {
          g_max = v;
          g_max_idx = static_cast<int>(t);
        }
      }
    }
    if (g_max_idx < 0) return false;
    const auto i = static_cast<std::size_t>(g_max_idx);
    const float* q_i = q_row(i);

    int g_min_idx = -1;
    double obj_min = std::numeric_limits<double>::infinity();
    for (std::size_t pos = 0; pos < active_size_; ++pos) {
      const std::size_t t = active_[pos];
      if (y_[t] == 1 ? alpha_[t] > 0.0 : alpha_[t] < options_.c) {
        const double v = -y_[t] * gradient_[t];
        // KKT gap: m(a) - M(a) with M = min over I_low of -y*G (tracked
        // here as max of y*G, matching LibSVM's Gmax2).
        g_max2 = std::max(g_max2, -v);
        const double diff = g_max - v;
        if (diff > 0.0) {
          // Curvature of the (i, t) subproblem: K_ii + K_tt - 2 K_it
          // (label-independent); q_i holds Q_it = y_i y_t K_it.
          const double quad =
              qd_[i] + qd_[t] -
              2.0 * y_[i] * y_[t] * static_cast<double>(q_i[t]);
          const double quad_pos = quad > 0.0 ? quad : kTau;
          const double gain = -(diff * diff) / quad_pos;
          if (gain <= obj_min) {
            obj_min = gain;
            g_min_idx = static_cast<int>(t);
          }
        }
        if (ins_ != nullptr) ins_->arith(1, 6, 6);
      }
    }
    if (g_max + g_max2 < options_.tolerance || g_min_idx < 0) return false;
    out_i = g_max_idx;
    out_j = g_min_idx;
    return true;
  }

  void update_pair(int ii, int jj) {
    const auto i = static_cast<std::size_t>(ii);
    const auto j = static_cast<std::size_t>(jj);
    const float* q_i = q_row(i);
    const float* q_j = q_row(j);
    const double c = options_.c;

    const double old_ai = alpha_[i];
    const double old_aj = alpha_[j];

    if (y_[i] != y_[j]) {
      const double quad =
          std::max(qd_[i] + qd_[j] + 2.0 * static_cast<double>(q_i[j]), kTau);
      const double delta = (-gradient_[i] - gradient_[j]) / quad;
      const double diff = alpha_[i] - alpha_[j];
      alpha_[i] += delta;
      alpha_[j] += delta;
      if (diff > 0.0) {
        if (alpha_[j] < 0.0) {
          alpha_[j] = 0.0;
          alpha_[i] = diff;
        }
        if (alpha_[i] > c) {
          alpha_[i] = c;
          alpha_[j] = c - diff;
        }
      } else {
        if (alpha_[i] < 0.0) {
          alpha_[i] = 0.0;
          alpha_[j] = -diff;
        }
        if (alpha_[j] > c) {
          alpha_[j] = c;
          alpha_[i] = c + diff;
        }
      }
    } else {
      const double quad =
          std::max(qd_[i] + qd_[j] - 2.0 * static_cast<double>(q_i[j]), kTau);
      const double delta = (gradient_[i] - gradient_[j]) / quad;
      const double sum = alpha_[i] + alpha_[j];
      alpha_[i] -= delta;
      alpha_[j] += delta;
      if (sum > c) {
        if (alpha_[i] > c) {
          alpha_[i] = c;
          alpha_[j] = sum - c;
        }
        if (alpha_[j] > c) {
          alpha_[j] = c;
          alpha_[i] = sum - c;
        }
      } else {
        if (alpha_[j] < 0.0) {
          alpha_[j] = 0.0;
          alpha_[i] = sum;
        }
        if (alpha_[i] < 0.0) {
          alpha_[i] = 0.0;
          alpha_[j] = sum;
        }
      }
    }

    // Gradient maintenance over the active set: scalar double loop reading
    // the float cache rows back into doubles (LibSVM's exact pattern).
    const double delta_ai = alpha_[i] - old_ai;
    const double delta_aj = alpha_[j] - old_aj;
    for (std::size_t pos = 0; pos < active_size_; ++pos) {
      const std::size_t t = active_[pos];
      gradient_[t] += static_cast<double>(q_i[t]) * delta_ai +
                      static_cast<double>(q_j[t]) * delta_aj;
    }
    // G_bar tracks the bounded variables' contribution so that shrunk
    // gradients can be reconstructed (LibSVM's G_bar).
    const bool was_upper_i = old_ai >= options_.c;
    const bool was_upper_j = old_aj >= options_.c;
    if (was_upper_i != (alpha_[i] >= options_.c)) {
      const double sign = was_upper_i ? -options_.c : options_.c;
      for (std::size_t t = 0; t < n_; ++t) {
        g_bar_[t] += sign * static_cast<double>(q_i[t]);
      }
    }
    if (was_upper_j != (alpha_[j] >= options_.c)) {
      const double sign = was_upper_j ? -options_.c : options_.c;
      for (std::size_t t = 0; t < n_; ++t) {
        g_bar_[t] += sign * static_cast<double>(q_j[t]);
      }
    }
    if (ins_ != nullptr) {
      for (std::size_t t = 0; t < n_; t += 8) {
        const auto lanes =
            static_cast<unsigned>(std::min<std::size_t>(8, n_ - t));
        // Even "vectorized" double work uses half the lanes of a 16-wide
        // single-precision VPU; LibSVM's loop is effectively scalar, so we
        // model scalar ops: two loads, fma, fma, store per element.
        for (unsigned u = 0; u < lanes; ++u) {
          ins_->load(q_i + t + u, 1);
          ins_->load(q_j + t + u, 1);
          ins_->load_f64(&gradient_[t + u], 1);
          ins_->arith(1, 2, 4);
          ins_->store_f64(&gradient_[t + u], 1);
        }
      }
    }
  }

  /// True when LibSVM would remove variable t from the active set given
  /// the current violation bounds (its exact be_shrunk predicate).
  [[nodiscard]] bool be_shrunk(std::size_t t, double gmax1,
                               double gmax2) const {
    if (alpha_[t] >= options_.c) {
      return y_[t] == 1 ? -gradient_[t] > gmax1 : -gradient_[t] > gmax2;
    }
    if (alpha_[t] <= 0.0) {
      return y_[t] == 1 ? gradient_[t] > gmax2 : gradient_[t] > gmax1;
    }
    return false;
  }

  /// LibSVM's do_shrinking: drop stably-bounded variables; if the KKT gap
  /// is already within 10x tolerance, unshrink everything first.
  void do_shrinking() {
    double gmax1 = -std::numeric_limits<double>::infinity();
    double gmax2 = -std::numeric_limits<double>::infinity();
    for (std::size_t pos = 0; pos < active_size_; ++pos) {
      const std::size_t t = active_[pos];
      if (y_[t] == 1 ? alpha_[t] < options_.c : alpha_[t] > 0.0) {
        gmax1 = std::max(gmax1, -static_cast<double>(y_[t]) * gradient_[t]);
      }
      if (y_[t] == 1 ? alpha_[t] > 0.0 : alpha_[t] < options_.c) {
        gmax2 = std::max(gmax2, static_cast<double>(y_[t]) * gradient_[t]);
      }
    }
    if (!unshrunk_ && gmax1 + gmax2 <= options_.tolerance * 10.0) {
      unshrunk_ = true;
      reconstruct_gradient();
      active_size_ = n_;
    }
    for (std::size_t pos = 0; pos < active_size_;) {
      if (be_shrunk(active_[pos], gmax1, gmax2)) {
        std::swap(active_[pos], active_[active_size_ - 1]);
        --active_size_;
      } else {
        ++pos;
      }
    }
  }

  /// Restores valid gradients for inactive variables:
  /// G[t] = G_bar[t] - 1 + sum over free alphas of alpha_j * Q_jt.
  void reconstruct_gradient() {
    if (active_size_ == n_) return;
    std::vector<std::size_t> inactive(active_.begin() +
                                          static_cast<long>(active_size_),
                                      active_.end());
    for (const std::size_t t : inactive) {
      gradient_[t] = g_bar_[t] - 1.0;
    }
    for (std::size_t pos = 0; pos < active_size_; ++pos) {
      const std::size_t j = active_[pos];
      if (alpha_[j] <= 0.0 || alpha_[j] >= options_.c) continue;
      const float* q_j = q_row(j);  // Q is symmetric: Q_jt == Q_tj
      for (const std::size_t t : inactive) {
        gradient_[t] += alpha_[j] * static_cast<double>(q_j[t]);
      }
    }
  }

  double compute_rho() const {
    // Average -y*G over free support vectors; midpoint of bounds otherwise.
    double upper = std::numeric_limits<double>::infinity();
    double lower = -std::numeric_limits<double>::infinity();
    double sum_free = 0.0;
    std::size_t n_free = 0;
    for (std::size_t t = 0; t < n_; ++t) {
      const double yg = y_[t] * gradient_[t];
      if (alpha_[t] >= options_.c) {
        if (y_[t] == -1) {
          upper = std::min(upper, yg);
        } else {
          lower = std::max(lower, yg);
        }
      } else if (alpha_[t] <= 0.0) {
        if (y_[t] == 1) {
          upper = std::min(upper, yg);
        } else {
          lower = std::max(lower, yg);
        }
      } else {
        ++n_free;
        sum_free += yg;
      }
    }
    if (n_free > 0) return sum_free / static_cast<double>(n_free);
    return (upper + lower) / 2.0;
  }

  TrainOptions options_;
  memsim::Instrument* ins_;
  std::size_t n_;
  std::vector<Node> nodes_;          // n_ arrays of n_ nodes + terminator
  std::vector<std::int8_t> y_;
  std::vector<double> alpha_;
  std::vector<double> gradient_;
  std::vector<double> g_bar_;        // bounded variables' gradient share
  std::vector<std::size_t> active_;  // positions [0, active_size_) active
  std::size_t active_size_ = 0;
  bool unshrunk_ = false;
  std::vector<double> qd_;           // diagonal of Q
  std::size_t cache_rows_ = 0;
  std::vector<float> cache_storage_; // LibSVM's Qfloat LRU cache
  std::vector<std::size_t> cache_of_;
  std::list<std::size_t> lru_;
};

}  // namespace

Model libsvm_train(linalg::ConstMatrixView kernel,
                   std::span<const std::int8_t> labels,
                   std::span<const std::size_t> train_idx,
                   const TrainOptions& options, memsim::Instrument* ins) {
  FCMA_CHECK(kernel.rows == kernel.cols, "kernel matrix must be square");
  FCMA_CHECK(labels.size() == kernel.rows, "one label per kernel row");
  Smo smo(kernel, labels, train_idx, options, ins);
  return smo.solve();
}

}  // namespace fcma::svm
