// Dense single-precision SMO solvers (paper §4.4).
//
// Two of the paper's three SVM implementations share this core:
//
//   "Optimized LibSVM"  — LibSVM's algorithm with the data-layout fixes of
//                         optimization idea #3: dense float kernel rows
//                         (no sparse node walk), single-precision math in
//                         the hot loops, vectorizable gradient updates.
//                         Heuristic: kSecondOrder.
//
//   "PhiSVM"            — the Catanzaro-derived fast SVM ported from CUDA:
//                         same dense float layout, but the working-set
//                         selection *adapts* between the first-order
//                         (Keerthi et al. maximal-violating-pair) and
//                         second-order (Fan et al.) heuristics based on the
//                         observed convergence rate.  Heuristic: kAdaptive.
//
// Both operate directly on the precomputed kernel matrix — no row cache is
// needed because FCMA's kernels are only a few hundred rows.
#pragma once

#include <span>

#include "svm/types.hpp"

namespace fcma::svm {

/// Working-set selection strategy.
enum class Heuristic {
  kFirstOrder,   ///< maximal violating pair (Keerthi et al. 2001)
  kSecondOrder,  ///< second-order gain (Fan, Chen, Lin 2005) — LibSVM's
  kAdaptive,     ///< PhiSVM: probe both, follow the faster convergence rate
};

/// Trains C-SVC on `train_idx` of a precomputed kernel with dense float
/// arithmetic.  See libsvm_train for the shared contract.
/// When `materialize_q` is set, the solver keeps LibSVM's data-structure
/// discipline: the signed Q rows (y_i * y_t * K_it) of the working pair are
/// materialized into buffers each iteration before the gradient update —
/// the residual overhead that separates "optimized LibSVM" from PhiSVM in
/// the paper's Table 8.  PhiSVM folds the labels into the update constants
/// and reads the kernel matrix directly.
[[nodiscard]] Model dense_train(linalg::ConstMatrixView kernel,
                                std::span<const std::int8_t> labels,
                                std::span<const std::size_t> train_idx,
                                const TrainOptions& options,
                                Heuristic heuristic,
                                memsim::Instrument* ins = nullptr,
                                unsigned model_lanes = 16,
                                bool materialize_q = false);

/// Convenience wrappers naming the paper's implementations.
[[nodiscard]] inline Model optimized_libsvm_train(
    linalg::ConstMatrixView kernel, std::span<const std::int8_t> labels,
    std::span<const std::size_t> train_idx, const TrainOptions& options,
    memsim::Instrument* ins = nullptr, unsigned model_lanes = 16) {
  return dense_train(kernel, labels, train_idx, options,
                     Heuristic::kSecondOrder, ins, model_lanes,
                     /*materialize_q=*/true);
}

[[nodiscard]] inline Model phisvm_train(
    linalg::ConstMatrixView kernel, std::span<const std::int8_t> labels,
    std::span<const std::size_t> train_idx, const TrainOptions& options,
    memsim::Instrument* ins = nullptr, unsigned model_lanes = 16) {
  return dense_train(kernel, labels, train_idx, options, Heuristic::kAdaptive,
                     ins, model_lanes);
}

}  // namespace fcma::svm
