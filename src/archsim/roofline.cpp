#include "archsim/roofline.hpp"

#include <algorithm>

namespace fcma::archsim {

double modeled_mem_bw_gbs(const ArchModel& model) {
  if (model.l2_miss_latency_cycles <= 0.0) return 0.0;
  return model.cores * model.mlp * kLineBytes * model.freq_ghz /
         model.l2_miss_latency_cycles;
}

trace::RooflineStats roofline_point(const ArchModel& model,
                                    const memsim::KernelEvents& events,
                                    int threads_used) {
  trace::RooflineStats out;
  out.modeled_s = model.modeled_seconds(events, threads_used);
  out.gflops = model.modeled_gflops(events, threads_used);

  const double bytes = static_cast<double>(events.l2_misses) * kLineBytes;
  const double flops = static_cast<double>(events.flops);
  const double peak = model.peak_sp_gflops();
  const double bw = modeled_mem_bw_gbs(model);

  if (bytes > 0.0) {
    out.ai_flops_per_byte = flops / bytes;
  } else {
    // Everything hit in cache: the memory roof is unreachable; report the
    // intensity as FLOPs per byte *referenced* so the number stays finite.
    const double ref_bytes = static_cast<double>(events.mem_refs) * 4.0;
    out.ai_flops_per_byte = ref_bytes > 0.0 ? flops / ref_bytes : 0.0;
  }

  const double mem_roof =
      bytes > 0.0 ? out.ai_flops_per_byte * bw : peak;
  const double roof = std::min(peak, mem_roof);
  out.bound = mem_roof < peak ? "memory" : "compute";
  out.pct_roofline = roof > 0.0 ? 100.0 * out.gflops / roof : 0.0;
  return out;
}

}  // namespace fcma::archsim
