// Roofline attribution: placing a measured kernel on the machine roofline.
//
// The roofline model (Williams et al., CACM 2009) bounds a kernel's
// attainable GFLOPS by min(peak_compute, AI * peak_mem_bw), where AI is the
// kernel's arithmetic intensity — useful FLOPs per byte moved from memory.
// The paper's whole optimization argument (§3.2, Fig. 6) is a roofline
// argument: blocked correlation pushes AI high enough to leave the memory
// slope, while naive SVM kernels sit pinned under it.
//
// Here both coordinates come from the *simulated* machine: AI is FLOPs per
// L2-miss byte from the memsim event counts, achieved GFLOPS comes from the
// ArchModel's modeled execution time, and the memory roof is the model's
// sustained-bandwidth implied by its miss-latency/MLP parameters:
//
//   mem_bw_GB/s = cores * mlp * line_bytes * freq_ghz / miss_latency_cycles
//
// roofline_point() packages that as a trace::RooflineStats, which the
// pipeline attaches to span labels in the fcma.trace.v2 "roofline" section.
#pragma once

#include "archsim/arch_model.hpp"
#include "common/metrics.hpp"
#include "memsim/instrument.hpp"

namespace fcma::archsim {

/// Cache line size assumed for miss-traffic accounting (both modeled
/// machines use 64-byte lines).
inline constexpr double kLineBytes = 64.0;

/// The model's sustained memory bandwidth in GB/s: `mlp` line-sized misses
/// in flight per core, each resolved in `l2_miss_latency_cycles`.
[[nodiscard]] double modeled_mem_bw_gbs(const ArchModel& model);

/// Places `events` on `model`'s roofline: modeled time, achieved GFLOPS,
/// arithmetic intensity (FLOPs per L2-miss byte), percent of the roof at
/// that intensity, and which roof binds.  `threads_used` spreads the events
/// over fewer hardware threads than the machine offers (0 = full machine).
[[nodiscard]] trace::RooflineStats roofline_point(
    const ArchModel& model, const memsim::KernelEvents& events,
    int threads_used = 0);

}  // namespace fcma::archsim
