#include "archsim/arch_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace fcma::archsim {

double ArchModel::modeled_seconds(const memsim::KernelEvents& events,
                                  int threads_used) const {
  if (threads_used <= 0) threads_used = max_threads();
  // Cores are the throughput resource; a core is "active" if at least one of
  // its hardware threads has work.  Threads beyond one per core add latency
  // hiding, which the mlp/overlap parameters already absorb, so utilization
  // is expressed as active cores.
  const double active_cores =
      std::min<double>(cores, static_cast<double>(threads_used) /
                                  threads_per_core +
                              1e-9);
  // In-order cores additionally need >=2 threads per core to keep the VPU
  // pipeline full; scale issue rate by the per-core thread occupancy.
  const double occupancy = std::min(
      1.0, static_cast<double>(threads_used) /
               (active_cores * std::min(threads_per_core, 2)));
  const double hz = freq_ghz * 1e9;
  const double compute_s =
      static_cast<double>(events.vpu_instructions) /
      (active_cores * vpu_issue_per_cycle * occupancy * hz);
  const double memory_s = static_cast<double>(events.l2_misses) *
                          l2_miss_latency_cycles / (active_cores * mlp * hz);
  const double hi = std::max(compute_s, memory_s);
  const double lo = std::min(compute_s, memory_s);
  return hi + (1.0 - overlap) * lo;
}

double ArchModel::modeled_gflops(const memsim::KernelEvents& events,
                                 int threads_used) const {
  const double s = modeled_seconds(events, threads_used);
  FCMA_CHECK(s > 0.0, "modeled time must be positive");
  return static_cast<double>(events.flops) / s / 1e9;
}

ArchModel Phi5110P() {
  return ArchModel{.name = "Xeon Phi 5110P",
                   .freq_ghz = 1.053,
                   .cores = 60,
                   .threads_per_core = 4,
                   .vpu_lanes_f32 = 16,
                   .vpu_issue_per_cycle = 1.0,
                   .l2_miss_latency_cycles = 300.0,
                   .mlp = 4.0,
                   .overlap = 0.6};
}

ArchModel XeonE5_2670() {
  // Sandy Bridge has no FMA; its separate 8-wide mul and add ports deliver
  // one FMA-*equivalent* per cycle, which is the unit the instrumented
  // kernels count, so issue is 1.0 (peak: 2.6 * 8 * 8 * 2 = 332.8 GFLOPS).
  return ArchModel{.name = "Xeon E5-2670",
                   .freq_ghz = 2.6,
                   .cores = 8,
                   .threads_per_core = 2,
                   .vpu_lanes_f32 = 8,
                   .vpu_issue_per_cycle = 1.0,
                   .l2_miss_latency_cycles = 180.0,
                   .mlp = 10.0,
                   .overlap = 0.9};
}

ArchModel PhiKnl7250() {
  return ArchModel{.name = "Xeon Phi 7250 (KNL)",
                   .freq_ghz = 1.4,
                   .cores = 68,
                   .threads_per_core = 4,
                   .vpu_lanes_f32 = 16,
                   .vpu_issue_per_cycle = 2.0,
                   .l2_miss_latency_cycles = 150.0,
                   .mlp = 10.0,
                   .overlap = 0.8};
}

}  // namespace fcma::archsim
