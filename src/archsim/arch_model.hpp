// Analytic machine performance model.
//
// The paper's hardware (Xeon Phi 5110P coprocessors, Xeon E5-2670 hosts) is
// not available, so absolute wall-clock numbers cannot be re-measured.  What
// *can* be reproduced exactly are the event counts the paper's analysis is
// built on (memory references, L2 misses, VPU instructions and lanes — see
// memsim/).  ArchModel converts those counts into modeled execution time on
// a described machine, which is how every "time (ms)" and "GFLOPS" column in
// the bench harness is produced for the Phi and the Xeon.
//
// The model is deliberately simple and fully documented:
//
//   compute_s = vpu_instructions / (cores_used * issue_rate * freq)
//   memory_s  = l2_misses * miss_latency / (cores_used * mlp * freq)
//   time      = max(compute_s, memory_s) + (1 - overlap) * min(...)
//
// i.e. bulk-synchronous cores with in-flight miss parallelism `mlp`, and an
// `overlap` factor describing how well the smaller of the two terms hides
// behind the larger (in-order KNC hides poorly, out-of-order Xeon well).
#pragma once

#include <cstdint>
#include <string>

#include "memsim/instrument.hpp"

namespace fcma::archsim {

/// Parameters of one modeled machine.
struct ArchModel {
  std::string name;
  double freq_ghz = 1.0;            ///< core clock
  int cores = 1;                    ///< physical cores
  int threads_per_core = 1;         ///< hardware threads per core
  int vpu_lanes_f32 = 16;           ///< SIMD width in floats
  double vpu_issue_per_cycle = 1.0; ///< VPU instructions retired/cycle/core
  double l2_miss_latency_cycles = 300.0;
  double mlp = 4.0;                 ///< overlapped outstanding misses/core
  double overlap = 0.7;             ///< compute/memory overlap [0,1]

  /// Peak single-precision GFLOPS (FMA counted as two FLOPs per lane).
  [[nodiscard]] double peak_sp_gflops() const {
    return freq_ghz * cores * vpu_lanes_f32 * 2.0 * vpu_issue_per_cycle;
  }

  /// Maximum concurrent hardware threads.
  [[nodiscard]] int max_threads() const { return cores * threads_per_core; }

  /// Modeled execution time in seconds for `events`, spread over
  /// `threads_used` hardware threads (defaults to the full machine).
  /// Fewer threads than the machine offers models the thread-starvation
  /// regime the paper describes for baseline SVM cross-validation (§3.3.3).
  [[nodiscard]] double modeled_seconds(const memsim::KernelEvents& events,
                                       int threads_used = 0) const;

  /// GFLOPS implied by `events` under this model.
  [[nodiscard]] double modeled_gflops(const memsim::KernelEvents& events,
                                      int threads_used = 0) const;
};

/// Intel Xeon Phi 5110P: 60 in-order cores @1.053GHz, 4 threads/core,
/// 512-bit VPU, ~300-cycle L2 miss (ring + GDDR5), weak miss overlap.
ArchModel Phi5110P();

/// Intel Xeon E5-2670: 8 OoO cores @2.6GHz, 2 threads/core, 256-bit AVX,
/// large LLC, deep miss parallelism and good overlap.
ArchModel XeonE5_2670();

/// Intel Xeon Phi 7250 "Knights Landing": the paper's conclusion projects a
/// migration "with moderate effort".  68 out-of-order-ish cores @1.4GHz,
/// 4 threads/core, two 512-bit VPUs per core, and MCDRAM giving far deeper
/// memory-level parallelism than KNC's GDDR5 ring.
ArchModel PhiKnl7250();

}  // namespace fcma::archsim
