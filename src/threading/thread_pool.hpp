// Thread-pool compatibility shim over the work-stealing scheduler.
//
// FCMA's worker pipeline parallelizes over voxels (one SVM problem per
// voxel) and over panel blocks inside the matrix kernels.  Both used to run
// on a single shared-FIFO pool defined here; PR 3 moved dispatch to
// `sched::Scheduler` (per-worker deques, randomized stealing, help-first
// joins — see sched/scheduler.hpp), and this header keeps the original
// `ThreadPool` / `parallel_for` surface as a thin forwarding layer so the
// many existing call sites did not have to churn.  New code should target
// `sched::Scheduler` directly (`pool.scheduler()` bridges).
#pragma once

#include <cstddef>
#include <functional>
#include <future>

#include "sched/scheduler.hpp"

namespace fcma::threading {

/// Compatibility wrapper: owns a `sched::Scheduler` and forwards to it.
///
/// Shutdown semantics are inherited from the scheduler: the destructor
/// *drains* — every task already submitted runs to completion before the
/// workers exit, so a future held past the pool's lifetime resolves
/// normally instead of throwing std::future_error(broken_promise).
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0) : sched_(threads) {}

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    return sched_.submit(std::forward<F>(fn));
  }

  [[nodiscard]] std::size_t size() const { return sched_.size(); }

  /// The scheduler behind this pool — for callers that want TaskGroup,
  /// spawn(), or dispatch stats.
  [[nodiscard]] sched::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const sched::Scheduler& scheduler() const { return sched_; }

  /// True when the calling thread is a worker of *this* pool's scheduler.
  /// The old process-global variant wrongly reported true on workers of
  /// *other* pools (so a task on pool A inlined parallel_for on pool B);
  /// the check is now instance-scoped, and with help-first joins nothing
  /// keys dispatch off it anyway.
  [[nodiscard]] bool inside_worker() const {
    return sched_.on_worker_thread();
  }

 private:
  sched::Scheduler sched_;
};

/// Runs fn(lo, hi) over [begin, end) across the pool, in chunks of `grain`.
/// Blocks until all iterations finish; rethrows the first chunk exception
/// once every chunk has completed.  Re-entrant at any depth: a worker
/// calling this helps execute chunks while it waits (and other workers
/// steal them), so nested calls are genuinely parallel instead of inlining
/// serially; an external caller parks until the chunks drain.
inline void parallel_for(
    ThreadPool& pool, std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  pool.scheduler().parallel_for(begin, end, grain, body);
}

/// Convenience overload: body receives a single index.
inline void parallel_for_each(ThreadPool& pool, std::size_t begin,
                              std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  pool.scheduler().parallel_for_each(begin, end, body);
}

}  // namespace fcma::threading
