// Fixed-size thread pool and data-parallel helpers.
//
// FCMA's worker pipeline parallelizes over voxels (one SVM problem per
// voxel) and over panel blocks inside the matrix kernels.  Both use this
// pool rather than OpenMP so the library has no compiler-runtime dependency
// and thread counts are an explicit runtime parameter (the paper studies
// 16- vs 240-thread regimes, which we model irrespective of the host).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace fcma::threading {

/// Fixed pool of worker threads consuming a FIFO task queue.
///
/// Shutdown semantics: the destructor *drains* the queue — every task
/// already submitted runs to completion before the workers exit, so a
/// future held past the pool's lifetime resolves normally instead of
/// throwing std::future_error(broken_promise).  Destruction therefore
/// blocks until the queue is empty and in-flight tasks return.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// True when the calling thread is a worker of *any* ThreadPool.  Blocking
  /// on futures from inside a worker can deadlock (every worker waiting,
  /// none left to run the queue), so parallel_for falls back to inline
  /// execution when this holds.
  [[nodiscard]] static bool inside_worker();

 private:
  void enqueue(std::function<void()> fn);
  void worker_loop(std::size_t worker);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [begin, end) across the pool, in chunks of `grain`.
/// Blocks until all iterations finish; rethrows the first task exception.
/// Re-entrant: when called from inside a pool worker the chunks run inline
/// on the calling thread (serially) instead of deadlocking on the queue.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Convenience overload: body receives a single index.
void parallel_for_each(ThreadPool& pool, std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& body);

}  // namespace fcma::threading
