#include "threading/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"

namespace fcma::threading {

namespace {
// Set for the lifetime of every pool worker thread; parallel_for consults
// it to detect re-entrant use (a task spawning nested parallel work).
thread_local bool t_inside_worker = false;
}  // namespace

bool ThreadPool::inside_worker() { return t_inside_worker; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  std::size_t depth;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(fn));
    depth = queue_.size();
  }
  cv_.notify_one();
  if (trace::enabled()) {
    trace::count("threadpool/tasks_submitted");
    trace::gauge_max("threadpool/max_queue_depth",
                     static_cast<double>(depth));
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  t_inside_worker = true;
  const std::string busy_label =
      "threadpool/worker" + std::to_string(worker) + "/busy";
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // stopping_ alone is not enough to exit: the destructor promises to
      // drain, so a worker leaves only once the queue is empty.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (trace::enabled()) {
      WallTimer timer;
      task();
      trace::record_span(busy_label, timer.seconds());
      trace::count("threadpool/tasks_executed");
    } else {
      task();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  FCMA_CHECK(grain > 0, "parallel_for grain must be positive");
  if (begin >= end) return;
  if (ThreadPool::inside_worker()) {
    // Nested call from inside a pool task: blocking on futures here could
    // leave every worker waiting with nobody to run the queue.  Run the
    // chunks inline on this thread instead.
    for (std::size_t lo = begin; lo < end; lo += grain) {
      body(lo, std::min(end, lo + grain));
    }
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve((end - begin + grain - 1) / grain);
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = std::min(end, lo + grain);
    futures.push_back(pool.submit([&body, lo, hi] { body(lo, hi); }));
  }
  for (auto& f : futures) f.get();  // propagates the first exception
}

void parallel_for_each(ThreadPool& pool, std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& body) {
  parallel_for(pool, begin, end, 1,
               [&body](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) body(i);
               });
}

}  // namespace fcma::threading
