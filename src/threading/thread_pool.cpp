#include "threading/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace fcma::threading {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  FCMA_CHECK(grain > 0, "parallel_for grain must be positive");
  if (begin >= end) return;
  std::vector<std::future<void>> futures;
  futures.reserve((end - begin + grain - 1) / grain);
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = std::min(end, lo + grain);
    futures.push_back(pool.submit([&body, lo, hi] { body(lo, hi); }));
  }
  for (auto& f : futures) f.get();  // propagates the first exception
}

void parallel_for_each(ThreadPool& pool, std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& body) {
  parallel_for(pool, begin, end, 1,
               [&body](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) body(i);
               });
}

}  // namespace fcma::threading
